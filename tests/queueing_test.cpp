#include "ctmc/birth_death.hpp"
#include "queueing/erlang.hpp"
#include "queueing/mm1k.hpp"
#include "queueing/multiclass.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace sq = socbuf::queueing;

TEST(Mm1k, BlockingMatchesStationaryTail) {
    const double lambda = 0.8;
    const double mu = 1.0;
    const std::size_t k = 5;
    const auto m = sq::analyze_mm1k(lambda, mu, k);
    const auto pi = socbuf::ctmc::mm1k_stationary(lambda, mu, k);
    EXPECT_NEAR(m.blocking_probability, pi[k], 1e-12);
    EXPECT_NEAR(m.loss_rate, lambda * pi[k], 1e-12);
    EXPECT_NEAR(m.throughput + m.loss_rate, lambda, 1e-12);
    EXPECT_NEAR(m.utilization, 1.0 - pi[0], 1e-12);
}

TEST(Mm1k, LittleLawConsistency) {
    const auto m = sq::analyze_mm1k(0.9, 1.0, 10);
    EXPECT_NEAR(m.mean_occupancy, m.throughput * m.mean_sojourn, 1e-12);
}

TEST(Mm1k, BlockingDecreasesWithCapacity) {
    double previous = 1.0;
    for (std::size_t k = 1; k <= 12; ++k) {
        const double b = sq::analyze_mm1k(0.95, 1.0, k).blocking_probability;
        EXPECT_LT(b, previous) << "k=" << k;
        previous = b;
    }
}

TEST(Mm1k, OverloadedQueueKeepsLosing) {
    // rho = 2: even large buffers lose about half the traffic.
    const auto m = sq::analyze_mm1k(2.0, 1.0, 64);
    EXPECT_NEAR(m.blocking_probability, 0.5, 1e-6);
}

TEST(Mm1k, MinCapacitySearch) {
    const std::size_t k =
        sq::min_capacity_for_blocking(0.8, 1.0, 0.01);
    // Verify minimality.
    EXPECT_LE(sq::analyze_mm1k(0.8, 1.0, k).blocking_probability, 0.01);
    ASSERT_GT(k, 1u);
    EXPECT_GT(sq::analyze_mm1k(0.8, 1.0, k - 1).blocking_probability, 0.01);
}

TEST(Mm1k, RejectsBadArguments) {
    EXPECT_THROW((void)sq::analyze_mm1k(-1.0, 1.0, 3),
                 socbuf::util::ContractViolation);
    EXPECT_THROW((void)sq::analyze_mm1k(1.0, 0.0, 3),
                 socbuf::util::ContractViolation);
    EXPECT_THROW((void)sq::analyze_mm1k(1.0, 1.0, 0),
                 socbuf::util::ContractViolation);
}

TEST(ErlangB, KnownValues) {
    // Classic table entries: B(1, 1) = 0.5; B(2, 2) = 0.4.
    EXPECT_NEAR(sq::erlang_b(1, 1.0), 0.5, 1e-12);
    EXPECT_NEAR(sq::erlang_b(2, 2.0), 0.4, 1e-12);
    EXPECT_NEAR(sq::erlang_b(0, 3.0), 1.0, 1e-12);
}

TEST(ErlangB, MatchesMm1BlockingWhenSingleServerNoWaiting) {
    // M/M/1/1 blocking = rho/(1+rho) = Erlang-B with 1 server.
    const double rho = 0.7;
    const auto m = sq::analyze_mm1k(rho, 1.0, 1);
    EXPECT_NEAR(m.blocking_probability, sq::erlang_b(1, rho), 1e-12);
}

TEST(ErlangB, ServerSearchIsMinimal) {
    const std::size_t c = sq::erlang_b_servers_for(10.0, 0.01);
    EXPECT_LE(sq::erlang_b(c, 10.0), 0.01);
    EXPECT_GT(sq::erlang_b(c - 1, 10.0), 0.01);
}

TEST(Multiclass, SingleClassReducesToMm1k) {
    const sq::FlowLoad f{0.8, 6, 1.0};
    const auto out = sq::approximate_shared_server({f}, 1.0);
    const auto exact = sq::analyze_mm1k(0.8, 1.0, 6);
    EXPECT_NEAR(out.loss_rate[0], exact.loss_rate, 1e-12);
    EXPECT_NEAR(out.blocking[0], exact.blocking_probability, 1e-12);
    EXPECT_NEAR(out.total_loss_rate, exact.loss_rate, 1e-12);
}

TEST(Multiclass, ZeroRateFlowHasNoLoss) {
    const auto out = sq::approximate_shared_server(
        {{0.0, 4, 1.0}, {0.9, 4, 1.0}}, 1.0);
    EXPECT_DOUBLE_EQ(out.loss_rate[0], 0.0);
    EXPECT_GT(out.loss_rate[1], 0.0);
}

TEST(Multiclass, WeightsScaleWeightedLoss) {
    const auto flows = std::vector<sq::FlowLoad>{{0.9, 3, 2.0}, {0.9, 3, 1.0}};
    const auto out = sq::approximate_shared_server(flows, 1.5);
    EXPECT_NEAR(out.weighted_loss_rate,
                2.0 * out.loss_rate[0] + 1.0 * out.loss_rate[1], 1e-12);
}

TEST(Multiclass, DemandAllocationExhaustsBudgetAndFavorsLoad) {
    const std::vector<sq::FlowLoad> flows{{0.2, 1, 1.0}, {1.4, 1, 1.0},
                                          {0.7, 1, 1.0}};
    const auto alloc = sq::demand_proportional_allocation(flows, 2.5, 24);
    EXPECT_EQ(std::accumulate(alloc.begin(), alloc.end(), 0L), 24);
    for (long a : alloc) EXPECT_GE(a, 1);
    // The heaviest flow needs the deepest buffer.
    EXPECT_GT(alloc[1], alloc[0]);
    EXPECT_GT(alloc[1], alloc[2]);
}

TEST(Multiclass, AllocationRequiresRoomForFloors) {
    const std::vector<sq::FlowLoad> flows{{0.5, 1, 1.0}, {0.5, 1, 1.0}};
    EXPECT_THROW(sq::demand_proportional_allocation(flows, 1.0, 1),
                 socbuf::util::ContractViolation);
}
