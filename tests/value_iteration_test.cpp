// The scaled VI rung: executor-fanned Jacobi sweeps must be bit-identical
// to the serial loop at every worker count (the determinism contract each
// report pins against), the opt-in Gauss–Seidel sweep must agree with
// Jacobi to tolerance while cutting the sweep count, and the SolveCache
// fingerprint must key on the sweep variant but never on the
// schedule-only knobs (executor, parallel_min_states).
#include "arch/presets.hpp"
#include "core/subsystem_model.hpp"
#include "ctmc/stationary.hpp"
#include "ctmdp/occupation.hpp"
#include "ctmdp/solve_cache.hpp"
#include "ctmdp/solver.hpp"
#include "ctmdp/value_iteration.hpp"
#include "exec/executor.hpp"
#include "split/splitter.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace sm = socbuf::ctmdp;

namespace {

/// Every figure1 subsystem as a CTMDP at the given per-flow cap.
std::vector<socbuf::core::SubsystemCtmdp> figure1_subsystems(long cap) {
    static const auto sys = socbuf::arch::figure1_system();
    static const auto split = socbuf::split::split_architecture(sys);
    std::vector<socbuf::core::SubsystemCtmdp> models;
    for (const auto& sub : split.subsystems) {
        std::vector<long> caps(sub.flows.size(), cap);
        std::vector<double> rates;
        for (const auto& f : sub.flows) rates.push_back(f.arrival_rate);
        models.emplace_back(sub, caps, rates);
    }
    return models;
}

/// The np-cluster-scaling ingress bus as a CTMDP — the wide-band family
/// whose state count is (cap + 1)^(pe + 1); pe = 6, cap = 2 gives the
/// 2187-state model the Gauss–Seidel pins run on. Returned by value (the
/// split it is built from is a local).
sm::CtmdpModel np_ingress_model(std::size_t pe, long cap) {
    socbuf::arch::NetworkProcessorParams params;
    params.pe_per_cluster = pe;
    const auto sys = socbuf::arch::network_processor_system(params);
    const auto split = socbuf::split::split_architecture(sys);
    const socbuf::split::Subsystem* bus = nullptr;
    for (const auto& sub : split.subsystems)
        if (sub.bus_name == "ingress") bus = &sub;
    std::vector<long> caps(bus->flows.size(), cap);
    std::vector<double> rates;
    for (const auto& f : bus->flows) rates.push_back(f.arrival_rate);
    return socbuf::core::SubsystemCtmdp(*bus, caps, rates).model();
}

void expect_bit_identical(const sm::ViResult& a, const sm::ViResult& b) {
    EXPECT_EQ(a.gain, b.gain);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.span_residual, b.span_residual);
    EXPECT_EQ(a.bias, b.bias);
    EXPECT_EQ(a.policy.choices(), b.policy.choices());
}

}  // namespace

TEST(ParallelVi, FannedJacobiBitIdenticalAtEveryWidth) {
    // The chunk boundaries of the fanned sweep depend only on the state
    // count, never on the pool size, so one, two and four workers (and
    // the no-executor serial loop) must produce the same bits —
    // including iteration counts and the final residual.
    for (const long cap : {3L, 4L}) {
        for (const auto& sub : figure1_subsystems(cap)) {
            const auto& model = sub.model();
            const auto serial = sm::relative_value_iteration(model);
            ASSERT_TRUE(serial.converged);
            for (const std::size_t threads : {1UL, 2UL, 4UL}) {
                socbuf::exec::Executor executor(threads);
                sm::ViOptions options;
                options.executor = &executor;
                options.parallel_min_states = 1;  // force the fanned path
                const auto fanned =
                    sm::relative_value_iteration(model, options);
                ASSERT_TRUE(fanned.converged);
                expect_bit_identical(serial, fanned);
            }
        }
    }
}

TEST(GaussSeidel, MatchesJacobiGainOnPresetSubsystems) {
    // Different trajectory, same fixed point: gains agree to the stopping
    // tolerance (not bit for bit — the sweep is opt-in for that reason).
    for (const long cap : {3L, 4L}) {
        for (const auto& sub : figure1_subsystems(cap)) {
            const auto& model = sub.model();
            const auto jacobi = sm::relative_value_iteration(model);
            sm::ViOptions options;
            options.sweep = sm::ViSweep::kGaussSeidel;
            const auto gs = sm::relative_value_iteration(model, options);
            ASSERT_TRUE(jacobi.converged);
            ASSERT_TRUE(gs.converged);
            EXPECT_NEAR(gs.gain, jacobi.gain, 1e-7)
                << "states " << model.state_count();
            // The bias convention is shared: h(ref) = 0 exactly.
            EXPECT_EQ(gs.bias[0], 0.0);
        }
    }
}

TEST(GaussSeidel, CutsSweepsInHalfOnTheClusterBus) {
    // The acceleration claim on the wide-band np family (2187 states):
    // the implicit-diagonal red-black sweep needs at most half Jacobi's
    // sweep count at the engine's VI-rung tolerance. Both solvers are
    // deterministic, so the pin cannot flake.
    const auto model = np_ingress_model(6, 2);
    ASSERT_EQ(model.state_count(), 2187u);
    sm::ViOptions jacobi;
    jacobi.tolerance = 1e-7;
    jacobi.max_iterations = 50000;
    auto gs = jacobi;
    gs.sweep = sm::ViSweep::kGaussSeidel;
    const auto rj = sm::relative_value_iteration(model, jacobi);
    const auto rg = sm::relative_value_iteration(model, gs);
    ASSERT_TRUE(rj.converged);
    ASSERT_TRUE(rg.converged);
    EXPECT_NEAR(rg.gain, rj.gain, 1e-5);
    EXPECT_LE(2 * rg.iterations, rj.iterations);
}

TEST(GaussSeidel, DeterministicAtEveryWidth) {
    // The red-black phases are Jacobi within themselves (compute pass,
    // then write pass), so the Gauss–Seidel sweep shares the fanned
    // determinism contract: any worker count, same bits.
    const auto model = np_ingress_model(6, 2);
    sm::ViOptions options;
    options.sweep = sm::ViSweep::kGaussSeidel;
    options.tolerance = 1e-7;
    options.max_iterations = 50000;
    const auto serial = sm::relative_value_iteration(model, options);
    ASSERT_TRUE(serial.converged);
    for (const std::size_t threads : {1UL, 2UL, 4UL}) {
        socbuf::exec::Executor executor(threads);
        auto fanned_options = options;
        fanned_options.executor = &executor;
        fanned_options.parallel_min_states = 1;
        const auto fanned =
            sm::relative_value_iteration(model, fanned_options);
        ASSERT_TRUE(fanned.converged);
        expect_bit_identical(serial, fanned);
    }
}

TEST(GaussSeidel, WarmSeedIsRePinnedAndConverges) {
    // A warm seed from a Jacobi solve (arbitrary offset) must be re-pinned
    // to the h(ref) = 0 convention and still reach the same gain.
    const auto models = figure1_subsystems(3);
    const auto& model = models.front().model();
    const auto cold = sm::relative_value_iteration(model);
    sm::ViOptions warm;
    warm.sweep = sm::ViSweep::kGaussSeidel;
    warm.initial_values = cold.bias;
    for (double& v : warm.initial_values) v += 17.5;  // break the pin
    const auto seeded = sm::relative_value_iteration(model, warm);
    ASSERT_TRUE(seeded.converged);
    EXPECT_NEAR(seeded.gain, cold.gain, 1e-7);
    EXPECT_EQ(seeded.bias[0], 0.0);
    EXPECT_LE(seeded.iterations, cold.iterations);
}

TEST(ParallelStationary, FannedPowerIterationBitIdentical) {
    // The gather-form stationary sweep: fanned and serial runs share the
    // stable-transpose fold order, so the distribution is bit-identical
    // at every width.
    const auto models = figure1_subsystems(4);
    const auto& model = models.front().model();
    sm::DispatchOptions lp;
    lp.choice = sm::SolverChoice::kLp;
    sm::SolverRegistry registry;
    const auto solution = registry.solve(model, lp);
    const auto chain =
        sm::induced_uniformized_chain(model, solution.policy);
    const auto serial = socbuf::ctmc::stationary_power_sparse(
        chain.jumps, chain.stay, 1e-11, 500000);
    for (const std::size_t threads : {2UL, 4UL}) {
        socbuf::exec::Executor executor(threads);
        const auto fanned = socbuf::ctmc::stationary_power_sparse(
            chain.jumps, chain.stay, 1e-11, 500000, &executor,
            /*parallel_min_states=*/1);
        EXPECT_EQ(serial, fanned);
    }
}

TEST(ParallelVi, OccupationAndPolicyCostMatchSerialOnTheViRung) {
    // End-to-end through the solver layer on a model past the fan gate
    // (1024 states >= parallel_min_states): occupation measure, policy
    // cost and the full solution must not move when an executor is
    // plugged in.
    const auto model = np_ingress_model(4, 3);
    ASSERT_EQ(model.state_count(), 1024u);
    sm::DispatchOptions vi;
    vi.choice = sm::SolverChoice::kValueIteration;
    vi.solver.vi.tolerance = 1e-7;
    vi.solver.vi.max_iterations = 50000;
    sm::SolverRegistry registry;
    const auto serial = registry.solve(model, vi);
    socbuf::exec::Executor executor(4);
    auto fanned_options = vi;
    fanned_options.solver.vi.executor = &executor;
    const auto fanned = registry.solve(model, fanned_options);
    EXPECT_EQ(serial.gain, fanned.gain);
    EXPECT_EQ(serial.bias, fanned.bias);
    EXPECT_EQ(serial.stationary, fanned.stationary);
    EXPECT_EQ(serial.occupation, fanned.occupation);
    const double cost_serial =
        sm::average_cost_of_policy(model, serial.policy);
    const double cost_fanned =
        sm::average_cost_of_policy(model, serial.policy, &executor);
    EXPECT_EQ(cost_serial, cost_fanned);
}

TEST(SolveCacheFingerprint, SweepIsKeyedScheduleKnobsAreNot) {
    const auto models = figure1_subsystems(2);
    const auto& model = models.front().model();
    const sm::DispatchOptions base;
    const auto base_key = sm::solve_fingerprint(model, base);

    // kGaussSeidel changes result bits, so it must change the key.
    auto gs = base;
    gs.solver.vi.sweep = sm::ViSweep::kGaussSeidel;
    EXPECT_NE(sm::solve_fingerprint(model, gs), base_key);

    // Schedule-only knobs are bit-identical by contract and must share
    // the key — otherwise fanned and serial runs could not share cache
    // entries.
    socbuf::exec::Executor executor(2);
    auto fanned = base;
    fanned.solver.vi.executor = &executor;
    fanned.solver.vi.parallel_min_states = 7;
    EXPECT_EQ(sm::solve_fingerprint(model, fanned), base_key);
}
