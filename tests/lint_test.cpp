// socbuf_lint — exact rule firings per fixture, suppression semantics,
// the layer rank table, and the binary's exit-code contract.
//
// Each known-bad snippet under tests/data/lint/ must trigger exactly its
// intended rule (and nothing else); each allowed twin must lint clean.
// Fixtures live outside the layered tree, so every case names the
// virtual path the snippet is linted "as" — the same mechanism the
// binary exposes via --as.
#include "lint.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "text_views.hpp"
#include "util/json.hpp"

namespace {

using socbuf::lint::analyze_text;
using socbuf::lint::Diagnostic;
using socbuf::lint::layer_rank;
using socbuf::lint::lint_text;
using socbuf::lint::nearest_rule;
using socbuf::lint::rule_ids;
using socbuf::lint::rule_scope;
using socbuf::lint::RuleScope;

std::string fixture_path(const std::string& name) {
    return std::string(SOCBUF_LINT_FIXTURES) + "/" + name;
}

std::string read_fixture(const std::string& name) {
    std::ifstream in(fixture_path(name), std::ios::binary);
    EXPECT_TRUE(in) << "missing fixture " << name;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::vector<std::string> fired_rules(const std::vector<Diagnostic>& found) {
    std::vector<std::string> rules;
    rules.reserve(found.size());
    for (const Diagnostic& diagnostic : found)
        rules.push_back(diagnostic.rule);
    return rules;
}

std::vector<Diagnostic> lint_fixture(const std::string& name,
                                     const std::string& virtual_path) {
    return lint_text(name, virtual_path, read_fixture(name), nullptr);
}

struct FixtureCase {
    const char* file;
    const char* virtual_path;
    std::vector<std::string> rules;  // expected firings, in line order
};

const std::vector<FixtureCase>& fixture_cases() {
    static const std::vector<FixtureCase> cases = {
        {"layering_bad.cpp", "src/arch/layering_bad.cpp", {"layering"}},
        {"layering_allowed.cpp", "src/arch/layering_allowed.cpp", {}},
        {"unordered_container_bad.hpp",
         "src/core/unordered_container_bad.hpp",
         {"unordered-container"}},
        {"unordered_container_allowed.hpp",
         "src/core/unordered_container_allowed.hpp",
         {}},
        {"unordered_iteration_bad.cpp",
         "src/core/unordered_iteration_bad.cpp",
         {"unordered-iteration", "unordered-iteration"}},
        {"unordered_iteration_allowed.cpp",
         "src/core/unordered_iteration_allowed.cpp",
         {}},
        {"random_source_bad.cpp", "src/sim/random_source_bad.cpp",
         {"random-source", "random-source"}},
        {"random_source_allowed.cpp", "src/sim/random_source_allowed.cpp",
         {}},
        {"wall_clock_bad.cpp", "src/scenario/wall_clock_bad.cpp",
         {"wall-clock"}},
        {"wall_clock_allowed.cpp", "src/scenario/wall_clock_allowed.cpp",
         {}},
        {"raw_thread_bad.cpp", "src/core/raw_thread_bad.cpp",
         {"raw-thread", "raw-thread"}},
        {"raw_thread_allowed.cpp", "src/core/raw_thread_allowed.cpp", {}},
        {"pointer_key_bad.cpp", "src/split/pointer_key_bad.cpp",
         {"pointer-key"}},
        {"pointer_key_allowed.cpp", "src/split/pointer_key_allowed.cpp", {}},
        {"pragma_once_bad.hpp", "src/util/pragma_once_bad.hpp",
         {"pragma-once"}},
        {"pragma_once_good.hpp", "src/util/pragma_once_good.hpp", {}},
        {"using_namespace_bad.hpp", "src/util/using_namespace_bad.hpp",
         {"using-namespace-header"}},
        {"using_namespace_allowed.hpp",
         "src/util/using_namespace_allowed.hpp",
         {}},
        {"suppression_unjustified.cpp",
         "src/core/suppression_unjustified.cpp",
         {"suppression", "random-source"}},
        {"suppression_unknown_rule.cpp",
         "src/util/suppression_unknown_rule.cpp",
         {"suppression"}},
    };
    return cases;
}

TEST(LintFixtures, EachFixtureTriggersExactlyItsRule) {
    for (const FixtureCase& fixture : fixture_cases()) {
        const std::vector<Diagnostic> found =
            lint_fixture(fixture.file, fixture.virtual_path);
        EXPECT_EQ(fired_rules(found), fixture.rules)
            << "fixture " << fixture.file << " linted as "
            << fixture.virtual_path;
    }
}

TEST(LintFixtures, BadFixturesReportTheExpectedLines) {
    // Line numbers are part of the diagnostic contract (editors jump to
    // them); pin the bad fixtures' exact firing lines.
    const std::map<std::string, std::vector<std::size_t>> expected = {
        {"layering_bad.cpp", {3}},
        {"unordered_container_bad.hpp", {9}},
        {"unordered_iteration_bad.cpp", {13, 17}},
        {"random_source_bad.cpp", {6, 8}},
        {"wall_clock_bad.cpp", {6}},
        {"raw_thread_bad.cpp", {7, 10}},
        {"pointer_key_bad.cpp", {8}},
        {"pragma_once_bad.hpp", {1}},
        {"using_namespace_bad.hpp", {7}},
        {"suppression_unjustified.cpp", {6, 7}},
        {"suppression_unknown_rule.cpp", {4}},
    };
    for (const FixtureCase& fixture : fixture_cases()) {
        const auto lines = expected.find(fixture.file);
        if (lines == expected.end()) continue;
        const std::vector<Diagnostic> found =
            lint_fixture(fixture.file, fixture.virtual_path);
        std::vector<std::size_t> got;
        got.reserve(found.size());
        for (const Diagnostic& diagnostic : found)
            got.push_back(diagnostic.line);
        EXPECT_EQ(got, lines->second) << "fixture " << fixture.file;
    }
}

TEST(LintLayering, RankTableMatchesTheRoadmapDag) {
    EXPECT_EQ(layer_rank("src/util/json.hpp"), 0);
    EXPECT_EQ(layer_rank("src/exec/thread_pool.hpp"), 1);
    EXPECT_EQ(layer_rank("src/ctmc/generator.hpp"), 2);
    EXPECT_EQ(layer_rank("src/ctmdp/solver.hpp"), 3);
    EXPECT_EQ(layer_rank("src/core/engine.hpp"), 5);
    EXPECT_EQ(layer_rank("src/scenario/scenario.hpp"), 6);
    EXPECT_EQ(layer_rank("src/session/session.hpp"), 7);
    // The experiments drivers are the ROADMAP's topmost layer even
    // though they live under src/core/.
    EXPECT_EQ(layer_rank("src/core/experiments.cpp"), 8);
    EXPECT_GT(layer_rank("src/core/experiments.cpp"),
              layer_rank("src/session/session.hpp"));
    // tools/bench/examples sit above every layer.
    EXPECT_EQ(layer_rank("tools/socbuf_cli.cpp"), -1);
    EXPECT_EQ(layer_rank("bench/bench_batch_scenarios.cpp"), -1);
}

std::vector<Diagnostic> lint_snippet(const std::string& virtual_path,
                                     const std::string& text) {
    return lint_text(virtual_path, virtual_path, text, nullptr);
}

TEST(LintLayering, DownwardIncludesAreClean) {
    EXPECT_TRUE(lint_snippet("src/session/x.cpp",
                             "#include \"scenario/scenario.hpp\"\n")
                    .empty());
    EXPECT_TRUE(lint_snippet("src/scenario/x.cpp",
                             "#include \"core/engine.hpp\"\n")
                    .empty());
    EXPECT_TRUE(
        lint_snippet("src/ctmc/x.cpp", "#include \"exec/parallel.hpp\"\n")
            .empty());
    // Same-module and same-directory includes are always fine.
    EXPECT_TRUE(
        lint_snippet("src/util/x.cpp", "#include \"util/json.hpp\"\n")
            .empty());
    EXPECT_TRUE(lint_snippet("src/util/x.cpp", "#include \"json.hpp\"\n")
                    .empty());
    // The top-rank directories may include anything.
    EXPECT_TRUE(lint_snippet("tools/x.cpp",
                             "#include \"session/session.hpp\"\n")
                    .empty());
}

TEST(LintLayering, UpwardAndSidewaysIncludesFire) {
    const std::vector<Diagnostic> upward = lint_snippet(
        "src/arch/x.hpp",
        "#pragma once\n#include \"scenario/scenario.hpp\"\n");
    ASSERT_EQ(upward.size(), 1u);
    EXPECT_EQ(upward[0].rule, "layering");
    EXPECT_EQ(upward[0].line, 2u);
    EXPECT_NE(upward[0].message.find(
                  "layer arch (rank 1) may not include layer scenario"),
              std::string::npos);

    // Sideways: ctmc and traffic share rank 2 and stay independent.
    const std::vector<Diagnostic> sideways = lint_snippet(
        "src/ctmc/x.cpp", "#include \"traffic/arrivals.hpp\"\n");
    ASSERT_EQ(sideways.size(), 1u);
    EXPECT_EQ(sideways[0].rule, "layering");
    EXPECT_NE(sideways[0].message.find("same-rank"), std::string::npos);

    // Nothing below the scenario stack may reach the experiments layer.
    const std::vector<Diagnostic> experiments = lint_snippet(
        "src/core/x.cpp", "#include \"core/experiments.hpp\"\n");
    ASSERT_EQ(experiments.size(), 1u);
    EXPECT_EQ(experiments[0].rule, "layering");
}

TEST(LintDeterminism, ScopeExemptionsHold) {
    // exec *is* the threading layer; the solve cache is the one
    // sanctioned lock user outside it.
    EXPECT_TRUE(
        lint_snippet("src/exec/x.cpp", "#include <mutex>\nstd::mutex m;\n")
            .empty());
    EXPECT_TRUE(lint_snippet("src/ctmdp/solve_cache.cpp",
                             "#include <mutex>\nstd::mutex m;\n")
                    .empty());
    // bench/ is measurement code: clocks are its purpose.
    EXPECT_TRUE(
        lint_snippet(
            "bench/x.cpp",
            "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n")
            .empty());
    // tools/ is determinism-scoped.
    const std::vector<Diagnostic> tool_clock = lint_snippet(
        "tools/x.cpp",
        "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n");
    ASSERT_EQ(tool_clock.size(), 1u);
    EXPECT_EQ(tool_clock[0].rule, "wall-clock");
}

TEST(LintDeterminism, PairedHeaderNamesExtendTheCpp) {
    // A member declared unordered in the .hpp and iterated in the .cpp
    // is caught even though the declaration is out of the .cpp's text.
    const std::string header =
        "#pragma once\n#include <string>\n#include <unordered_map>\n"
        "struct Cache {\n"
        "    // socbuf-lint: allow(unordered-container) — lookup-only "
        "index.\n"
        "    std::unordered_map<std::string, int> index_;\n"
        "    int fold() const;\n"
        "};\n";
    const std::string source =
        "#include \"cache.hpp\"\n"
        "int Cache::fold() const {\n"
        "    int sum = 0;\n"
        "    for (const auto& [key, value] : index_) sum += value;\n"
        "    return sum;\n"
        "}\n";
    const std::vector<Diagnostic> found =
        lint_text("cache.cpp", "src/ctmdp/cache.cpp", source, &header);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "unordered-iteration");
    EXPECT_EQ(found[0].line, 4u);
}

TEST(LintSuppressions, CommentTextAndStringLiteralsDoNotFire) {
    // Banned tokens in comments and string literals are data, not code.
    EXPECT_TRUE(lint_snippet("src/core/x.cpp",
                             "// std::rand() in prose is fine\n"
                             "const char* kDoc = \"std::rand()\";\n")
                    .empty());
    // A suppression marker inside a string literal is data too: the
    // linter's own sources print these markers.
    EXPECT_TRUE(lint_snippet("src/core/x.cpp",
                             "const char* kMsg = \"socbuf-lint: "
                             "allow(oops)\";\n")
                    .empty());
}

TEST(LintSuppressions, SameLineAndNextLineForms) {
    // End-of-line form annotates its own line.
    EXPECT_TRUE(
        lint_snippet("src/core/x.cpp",
                     "#include <cstdlib>\n"
                     "int j() { return std::rand(); }  // socbuf-lint: "
                     "allow(random-source) — fixture.\n")
            .empty());
    // A comment-only suppression annotates the next line, not the one
    // after it.
    const std::vector<Diagnostic> gap = lint_snippet(
        "src/core/x.cpp",
        "#include <cstdlib>\n"
        "// socbuf-lint: allow(random-source) — aimed at the blank below.\n"
        "\n"
        "int j() { return std::rand(); }\n");
    ASSERT_EQ(gap.size(), 1u);
    EXPECT_EQ(gap[0].rule, "random-source");
    EXPECT_EQ(gap[0].line, 4u);
}

TEST(LintRules, EveryRuleHasADescription) {
    for (const std::string& rule : rule_ids())
        EXPECT_FALSE(socbuf::lint::rule_description(rule).empty()) << rule;
    EXPECT_TRUE(socbuf::lint::rule_description("no-such-rule").empty());
}

// ----------------------------------------------------- call-graph rules
//
// The worker-context families need the whole-set entry point
// (analyze_text runs the call-graph pass on top of the per-file rules);
// each bad fixture pins exact rules and lines, each allowed twin — the
// same shape made safe with slots, atomics or argued suppressions —
// must come back clean.

std::vector<Diagnostic> analyze_fixture(const std::string& name,
                                        const std::string& virtual_path) {
    return analyze_text(name, virtual_path, read_fixture(name));
}

const std::vector<FixtureCase>& callgraph_fixture_cases() {
    static const std::vector<FixtureCase> cases = {
        {"static_mutable_bad.cpp", "src/core/static_mutable_bad.cpp",
         {"static-mutable", "static-mutable"}},
        {"static_mutable_allowed.cpp",
         "src/core/static_mutable_allowed.cpp",
         {}},
        {"nonreentrant_call_bad.cpp",
         "src/scenario/nonreentrant_call_bad.cpp",
         {"nonreentrant-call", "nonreentrant-call"}},
        {"nonreentrant_call_allowed.cpp",
         "src/scenario/nonreentrant_call_allowed.cpp",
         {}},
        {"shared_capture_bad.cpp", "src/core/shared_capture_bad.cpp",
         {"shared-capture", "shared-capture"}},
        {"shared_capture_allowed.cpp",
         "src/core/shared_capture_allowed.cpp",
         {}},
        {"fold_order_bad.cpp", "src/ctmc/fold_order_bad.cpp",
         {"fold-order"}},
        {"fold_order_allowed.cpp", "src/ctmc/fold_order_allowed.cpp", {}},
        {"callgraph_reach.cpp", "src/core/callgraph_reach.cpp",
         {"static-mutable"}},
        {"allow_file_ok.cpp", "src/core/allow_file_ok.cpp", {}},
        {"allow_file_unknown.cpp", "src/core/allow_file_unknown.cpp",
         {"suppression", "wall-clock"}},
        {"allow_file_unjustified.cpp",
         "src/core/allow_file_unjustified.cpp",
         {"suppression", "wall-clock"}},
        {"allow_file_late.cpp", "src/core/allow_file_late.cpp",
         {"suppression", "wall-clock"}},
    };
    return cases;
}

TEST(LintCallGraphFixtures, EachFixtureTriggersExactlyItsRules) {
    for (const FixtureCase& fixture : callgraph_fixture_cases()) {
        const std::vector<Diagnostic> found =
            analyze_fixture(fixture.file, fixture.virtual_path);
        EXPECT_EQ(fired_rules(found), fixture.rules)
            << "fixture " << fixture.file << " analyzed as "
            << fixture.virtual_path;
    }
}

TEST(LintCallGraphFixtures, BadFixturesReportTheExpectedLines) {
    const std::map<std::string, std::vector<std::size_t>> expected = {
        {"static_mutable_bad.cpp", {11, 13}},
        {"nonreentrant_call_bad.cpp", {11, 12}},
        {"shared_capture_bad.cpp", {13, 14}},
        {"fold_order_bad.cpp", {14}},
        {"callgraph_reach.cpp", {10}},
        {"allow_file_unknown.cpp", {3, 10}},
        {"allow_file_unjustified.cpp", {3, 10}},
        {"allow_file_late.cpp", {11, 13}},
    };
    for (const FixtureCase& fixture : callgraph_fixture_cases()) {
        const auto lines = expected.find(fixture.file);
        if (lines == expected.end()) continue;
        const std::vector<Diagnostic> found =
            analyze_fixture(fixture.file, fixture.virtual_path);
        std::vector<std::size_t> got;
        got.reserve(found.size());
        for (const Diagnostic& diagnostic : found)
            got.push_back(diagnostic.line);
        EXPECT_EQ(got, lines->second) << "fixture " << fixture.file;
    }
}

TEST(LintCallGraphFixtures, WorkerRulesCoverOnlySrc) {
    // bench/ fans work out too, but its output is not part of the
    // bit-identical report contract; tests/ is outside every scope. The
    // same known-bad bodies analyzed there must come back clean.
    const std::string text = read_fixture("fold_order_bad.cpp");
    EXPECT_TRUE(analyze_text("fold_order_bad.cpp",
                             "bench/fold_order_bad.cpp", text)
                    .empty());
    EXPECT_TRUE(analyze_text("fold_order_bad.cpp",
                             "tests/fold_order_bad.cpp", text)
                    .empty());
}

TEST(LintSuppressions, UnknownRuleNamesTheNearestValidRule) {
    const std::vector<Diagnostic> found = analyze_fixture(
        "allow_file_unknown.cpp", "src/core/allow_file_unknown.cpp");
    ASSERT_FALSE(found.empty());
    EXPECT_EQ(found[0].rule, "suppression");
    EXPECT_NE(found[0].message.find("unknown rule 'wall-clok'"),
              std::string::npos);
    EXPECT_NE(found[0].message.find("did you mean 'wall-clock'?"),
              std::string::npos);
}

TEST(LintSuppressions, LateAllowFileSaysWhyItWasRejected) {
    const std::vector<Diagnostic> found = analyze_fixture(
        "allow_file_late.cpp", "src/core/allow_file_late.cpp");
    ASSERT_FALSE(found.empty());
    EXPECT_EQ(found[0].rule, "suppression");
    EXPECT_NE(found[0].message.find("first 10 lines"), std::string::npos);
}

TEST(LintRules, ScopesSplitPerFileFromCallGraph) {
    EXPECT_EQ(rule_scope("layering"), RuleScope::kPerFile);
    EXPECT_EQ(rule_scope("wall-clock"), RuleScope::kPerFile);
    EXPECT_EQ(rule_scope("static-mutable"), RuleScope::kCallGraph);
    EXPECT_EQ(rule_scope("nonreentrant-call"), RuleScope::kCallGraph);
    EXPECT_EQ(rule_scope("shared-capture"), RuleScope::kCallGraph);
    EXPECT_EQ(rule_scope("fold-order"), RuleScope::kCallGraph);
}

TEST(LintRules, NearestRuleSuggestsPlausibleTyposOnly) {
    EXPECT_EQ(nearest_rule("wall-clok"), "wall-clock");
    EXPECT_EQ(nearest_rule("shared-captur"), "shared-capture");
    EXPECT_EQ(nearest_rule("fold_order"), "fold-order");
    EXPECT_EQ(nearest_rule("zzzzzz"), "");
}

// ------------------------------------------------- real-tree reachability
//
// The acceptance pin: on the real tree, the call-graph pass reaches the
// BufferSizingEngine and BatchRunner bodies from the exec entry points.

TEST(LintCallGraph, RealTreeReachesEngineAndBatchRunnerBodies) {
    namespace fs = std::filesystem;
    namespace cg = socbuf::lint::callgraph;
    const fs::path src = fs::path(SOCBUF_REPO_ROOT) / "src";
    std::vector<cg::SourceInput> inputs;
    for (fs::recursive_directory_iterator it(src), done; it != done; ++it) {
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext != ".cpp" && ext != ".hpp") continue;
        std::ifstream in(it->path(), std::ios::binary);
        ASSERT_TRUE(in) << it->path();
        std::ostringstream text;
        text << in.rdbuf();
        const std::string virtual_path =
            it->path().lexically_relative(fs::path(SOCBUF_REPO_ROOT))
                .generic_string();
        inputs.push_back({virtual_path, virtual_path,
                          socbuf::lint::split_views(text.str()).code});
    }
    ASSERT_GT(inputs.size(), 50u);
    const cg::Graph graph = cg::build(inputs);
    const std::vector<bool> reachable = cg::worker_reachable(graph);

    const auto is_reachable = [&](const std::string& name) {
        for (std::size_t i = 0; i < graph.functions.size(); ++i)
            if (graph.functions[i].name == name && reachable[i])
                return true;
        return false;
    };
    // The sizing engine's solve bodies fan out through Executor::map.
    EXPECT_TRUE(is_reachable("BufferSizingEngine::run"));
    EXPECT_TRUE(is_reachable("score_subsystems"));
    EXPECT_TRUE(is_reachable("solve_one"));
    // The batch runner's jobs flow through TaskGraph::submit.
    EXPECT_TRUE(is_reachable("BatchRunner::run"));
    EXPECT_TRUE(is_reachable("run_sizing"));
    EXPECT_TRUE(is_reachable("run_eval"));
    // Nothing in the launcher-only surface should be worker context.
    EXPECT_FALSE(is_reachable("main"));
}

// ----------------------------------------------------------- output forms

std::vector<std::string> nonempty_lines(const std::string& text) {
    std::vector<std::string> out;
    std::istringstream stream(text);
    std::string line;
    while (std::getline(stream, line))
        if (!line.empty()) out.push_back(line);
    return out;
}

TEST(LintFormats, JsonRoundTripsAndMatchesTextOneToOne) {
    socbuf::lint::RunOptions options;
    options.as = "src/core/shared_capture_bad.cpp";
    options.paths = {fixture_path("shared_capture_bad.cpp")};

    std::ostringstream text_out, text_err;
    options.format = socbuf::lint::Format::kText;
    EXPECT_EQ(socbuf::lint::run(options, text_out, text_err), 1);

    std::ostringstream json_out, json_err;
    options.format = socbuf::lint::Format::kJson;
    EXPECT_EQ(socbuf::lint::run(options, json_out, json_err), 1);

    const socbuf::util::JsonValue report =
        socbuf::util::JsonValue::parse(json_out.str());
    const socbuf::util::JsonValue& list = report.at("diagnostics");
    EXPECT_EQ(report.at("tool").as_string(), "socbuf_lint");
    EXPECT_EQ(static_cast<std::size_t>(report.at("count").as_number()),
              list.size());

    // Every text line reconstructs from its JSON entry, 1:1 and in
    // order.
    const std::vector<std::string> lines = nonempty_lines(text_out.str());
    ASSERT_EQ(lines.size(), list.size());
    for (std::size_t i = 0; i < list.size(); ++i) {
        const socbuf::util::JsonValue& entry = list.at(i);
        std::ostringstream rebuilt;
        rebuilt << entry.at("file").as_string() << ":"
                << static_cast<std::size_t>(entry.at("line").as_number())
                << ": [" << entry.at("rule").as_string() << "] "
                << entry.at("message").as_string();
        EXPECT_EQ(lines[i], rebuilt.str());
    }
}

TEST(LintFormats, SarifShapeParsesWithTheExpectedSkeleton) {
    socbuf::lint::RunOptions options;
    options.as = "src/ctmc/fold_order_bad.cpp";
    options.paths = {fixture_path("fold_order_bad.cpp")};
    options.format = socbuf::lint::Format::kSarif;
    std::ostringstream out, err;
    EXPECT_EQ(socbuf::lint::run(options, out, err), 1);

    const socbuf::util::JsonValue log =
        socbuf::util::JsonValue::parse(out.str());
    EXPECT_EQ(log.at("version").as_string(), "2.1.0");
    const socbuf::util::JsonValue& run = log.at("runs").at(0);
    EXPECT_EQ(run.at("tool").at("driver").at("name").as_string(),
              "socbuf_lint");
    ASSERT_EQ(run.at("results").size(), 1u);
    const socbuf::util::JsonValue& result = run.at("results").at(0);
    EXPECT_EQ(result.at("ruleId").as_string(), "fold-order");
    EXPECT_EQ(static_cast<std::size_t>(
                  result.at("locations")
                      .at(0)
                      .at("physicalLocation")
                      .at("region")
                      .at("startLine")
                      .as_number()),
              14u);
}

// ------------------------------------------------------------- baseline

TEST(LintBaseline, WriteThenGateDropsKnownFindingsOnly) {
    namespace fs = std::filesystem;
    const fs::path baseline =
        fs::temp_directory_path() / "socbuf_lint_baseline_test.txt";
    socbuf::lint::RunOptions options;
    options.as = "src/core/shared_capture_bad.cpp";
    options.paths = {fixture_path("shared_capture_bad.cpp")};

    // Writing the baseline swallows the findings and exits 0.
    options.write_baseline = baseline.string();
    std::ostringstream write_out, write_err;
    EXPECT_EQ(socbuf::lint::run(options, write_out, write_err), 0);

    // Gating against it: the same findings are tolerated, exit 0.
    options.write_baseline.clear();
    options.baseline = baseline.string();
    std::ostringstream gate_out, gate_err;
    EXPECT_EQ(socbuf::lint::run(options, gate_out, gate_err), 0);
    EXPECT_TRUE(nonempty_lines(gate_out.str()).empty());

    // A different file's findings are new: the gate fails.
    options.as = "src/ctmc/fold_order_bad.cpp";
    options.paths = {fixture_path("fold_order_bad.cpp")};
    std::ostringstream fresh_out, fresh_err;
    EXPECT_EQ(socbuf::lint::run(options, fresh_out, fresh_err), 1);
    EXPECT_FALSE(nonempty_lines(fresh_out.str()).empty());

    fs::remove(baseline);
}

int run_binary(const std::string& arguments) {
    const std::string command = std::string(SOCBUF_LINT_BIN) + " " +
                                arguments + " >/dev/null 2>&1";
    const int status = std::system(command.c_str());
    return WEXITSTATUS(status);
}

TEST(LintBinary, ExitCodesFollowTheContract) {
    // 0: clean input.
    EXPECT_EQ(run_binary("--as src/util/x.hpp " +
                         fixture_path("pragma_once_good.hpp")),
              0);
    // 1: diagnostics fired.
    EXPECT_EQ(run_binary("--as src/arch/x.cpp " +
                         fixture_path("layering_bad.cpp")),
              1);
    // 2: usage errors (no inputs; unreadable path; clashing baselines).
    EXPECT_EQ(run_binary(""), 2);
    EXPECT_EQ(run_binary(fixture_path("no_such_fixture.cpp")), 2);
    EXPECT_EQ(run_binary("--baseline a --write-baseline b " +
                         fixture_path("pragma_once_good.hpp")),
              2);
}

std::string run_binary_stdout(const std::string& arguments) {
    const std::string command =
        std::string(SOCBUF_LINT_BIN) + " " + arguments + " 2>/dev/null";
    FILE* pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    if (pipe == nullptr) return "";
    std::string out;
    char buffer[4096];
    std::size_t got = 0;
    while ((got = std::fread(buffer, 1, sizeof buffer, pipe)) > 0)
        out.append(buffer, got);
    pclose(pipe);
    return out;
}

TEST(LintBinary, ListRulesShowsScopeAndDescription) {
    const std::string out = run_binary_stdout("--list-rules");
    EXPECT_NE(out.find("wall-clock [per-file]"), std::string::npos);
    EXPECT_NE(out.find("shared-capture [call-graph]"), std::string::npos);
    // Every documented rule id appears.
    for (const std::string& rule : rule_ids())
        EXPECT_NE(out.find(rule + " ["), std::string::npos) << rule;
}

TEST(LintBinary, WholeTreeJsonRunIsCleanAgainstTheBaseline) {
    // The acceptance pin: the real tree lints clean in JSON mode. Run
    // from the repo root so display paths match the committed baseline.
    const std::string root = SOCBUF_REPO_ROOT;
    EXPECT_EQ(run_binary("--format=json --baseline " + root +
                         "/tools/lint/baseline.txt --root " + root + " " +
                         root + "/src " + root + "/tools"),
              0);
}

}  // namespace
