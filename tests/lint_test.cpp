// socbuf_lint — exact rule firings per fixture, suppression semantics,
// the layer rank table, and the binary's exit-code contract.
//
// Each known-bad snippet under tests/data/lint/ must trigger exactly its
// intended rule (and nothing else); each allowed twin must lint clean.
// Fixtures live outside the layered tree, so every case names the
// virtual path the snippet is linted "as" — the same mechanism the
// binary exposes via --as.
#include "lint.hpp"

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

using socbuf::lint::Diagnostic;
using socbuf::lint::layer_rank;
using socbuf::lint::lint_text;
using socbuf::lint::rule_ids;

std::string fixture_path(const std::string& name) {
    return std::string(SOCBUF_LINT_FIXTURES) + "/" + name;
}

std::string read_fixture(const std::string& name) {
    std::ifstream in(fixture_path(name), std::ios::binary);
    EXPECT_TRUE(in) << "missing fixture " << name;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::vector<std::string> fired_rules(const std::vector<Diagnostic>& found) {
    std::vector<std::string> rules;
    rules.reserve(found.size());
    for (const Diagnostic& diagnostic : found)
        rules.push_back(diagnostic.rule);
    return rules;
}

std::vector<Diagnostic> lint_fixture(const std::string& name,
                                     const std::string& virtual_path) {
    return lint_text(name, virtual_path, read_fixture(name), nullptr);
}

struct FixtureCase {
    const char* file;
    const char* virtual_path;
    std::vector<std::string> rules;  // expected firings, in line order
};

const std::vector<FixtureCase>& fixture_cases() {
    static const std::vector<FixtureCase> cases = {
        {"layering_bad.cpp", "src/arch/layering_bad.cpp", {"layering"}},
        {"layering_allowed.cpp", "src/arch/layering_allowed.cpp", {}},
        {"unordered_container_bad.hpp",
         "src/core/unordered_container_bad.hpp",
         {"unordered-container"}},
        {"unordered_container_allowed.hpp",
         "src/core/unordered_container_allowed.hpp",
         {}},
        {"unordered_iteration_bad.cpp",
         "src/core/unordered_iteration_bad.cpp",
         {"unordered-iteration", "unordered-iteration"}},
        {"unordered_iteration_allowed.cpp",
         "src/core/unordered_iteration_allowed.cpp",
         {}},
        {"random_source_bad.cpp", "src/sim/random_source_bad.cpp",
         {"random-source", "random-source"}},
        {"random_source_allowed.cpp", "src/sim/random_source_allowed.cpp",
         {}},
        {"wall_clock_bad.cpp", "src/scenario/wall_clock_bad.cpp",
         {"wall-clock"}},
        {"wall_clock_allowed.cpp", "src/scenario/wall_clock_allowed.cpp",
         {}},
        {"raw_thread_bad.cpp", "src/core/raw_thread_bad.cpp",
         {"raw-thread", "raw-thread"}},
        {"raw_thread_allowed.cpp", "src/core/raw_thread_allowed.cpp", {}},
        {"pointer_key_bad.cpp", "src/split/pointer_key_bad.cpp",
         {"pointer-key"}},
        {"pointer_key_allowed.cpp", "src/split/pointer_key_allowed.cpp", {}},
        {"pragma_once_bad.hpp", "src/util/pragma_once_bad.hpp",
         {"pragma-once"}},
        {"pragma_once_good.hpp", "src/util/pragma_once_good.hpp", {}},
        {"using_namespace_bad.hpp", "src/util/using_namespace_bad.hpp",
         {"using-namespace-header"}},
        {"using_namespace_allowed.hpp",
         "src/util/using_namespace_allowed.hpp",
         {}},
        {"suppression_unjustified.cpp",
         "src/core/suppression_unjustified.cpp",
         {"suppression", "random-source"}},
        {"suppression_unknown_rule.cpp",
         "src/util/suppression_unknown_rule.cpp",
         {"suppression"}},
    };
    return cases;
}

TEST(LintFixtures, EachFixtureTriggersExactlyItsRule) {
    for (const FixtureCase& fixture : fixture_cases()) {
        const std::vector<Diagnostic> found =
            lint_fixture(fixture.file, fixture.virtual_path);
        EXPECT_EQ(fired_rules(found), fixture.rules)
            << "fixture " << fixture.file << " linted as "
            << fixture.virtual_path;
    }
}

TEST(LintFixtures, BadFixturesReportTheExpectedLines) {
    // Line numbers are part of the diagnostic contract (editors jump to
    // them); pin the bad fixtures' exact firing lines.
    const std::map<std::string, std::vector<std::size_t>> expected = {
        {"layering_bad.cpp", {3}},
        {"unordered_container_bad.hpp", {9}},
        {"unordered_iteration_bad.cpp", {13, 17}},
        {"random_source_bad.cpp", {6, 8}},
        {"wall_clock_bad.cpp", {6}},
        {"raw_thread_bad.cpp", {7, 10}},
        {"pointer_key_bad.cpp", {8}},
        {"pragma_once_bad.hpp", {1}},
        {"using_namespace_bad.hpp", {7}},
        {"suppression_unjustified.cpp", {6, 7}},
        {"suppression_unknown_rule.cpp", {4}},
    };
    for (const FixtureCase& fixture : fixture_cases()) {
        const auto lines = expected.find(fixture.file);
        if (lines == expected.end()) continue;
        const std::vector<Diagnostic> found =
            lint_fixture(fixture.file, fixture.virtual_path);
        std::vector<std::size_t> got;
        got.reserve(found.size());
        for (const Diagnostic& diagnostic : found)
            got.push_back(diagnostic.line);
        EXPECT_EQ(got, lines->second) << "fixture " << fixture.file;
    }
}

TEST(LintLayering, RankTableMatchesTheRoadmapDag) {
    EXPECT_EQ(layer_rank("src/util/json.hpp"), 0);
    EXPECT_EQ(layer_rank("src/exec/thread_pool.hpp"), 1);
    EXPECT_EQ(layer_rank("src/ctmc/generator.hpp"), 2);
    EXPECT_EQ(layer_rank("src/ctmdp/solver.hpp"), 3);
    EXPECT_EQ(layer_rank("src/core/engine.hpp"), 5);
    EXPECT_EQ(layer_rank("src/scenario/scenario.hpp"), 6);
    EXPECT_EQ(layer_rank("src/session/session.hpp"), 7);
    // The experiments drivers are the ROADMAP's topmost layer even
    // though they live under src/core/.
    EXPECT_EQ(layer_rank("src/core/experiments.cpp"), 8);
    EXPECT_GT(layer_rank("src/core/experiments.cpp"),
              layer_rank("src/session/session.hpp"));
    // tools/bench/examples sit above every layer.
    EXPECT_EQ(layer_rank("tools/socbuf_cli.cpp"), -1);
    EXPECT_EQ(layer_rank("bench/bench_batch_scenarios.cpp"), -1);
}

std::vector<Diagnostic> lint_snippet(const std::string& virtual_path,
                                     const std::string& text) {
    return lint_text(virtual_path, virtual_path, text, nullptr);
}

TEST(LintLayering, DownwardIncludesAreClean) {
    EXPECT_TRUE(lint_snippet("src/session/x.cpp",
                             "#include \"scenario/scenario.hpp\"\n")
                    .empty());
    EXPECT_TRUE(lint_snippet("src/scenario/x.cpp",
                             "#include \"core/engine.hpp\"\n")
                    .empty());
    EXPECT_TRUE(
        lint_snippet("src/ctmc/x.cpp", "#include \"exec/parallel.hpp\"\n")
            .empty());
    // Same-module and same-directory includes are always fine.
    EXPECT_TRUE(
        lint_snippet("src/util/x.cpp", "#include \"util/json.hpp\"\n")
            .empty());
    EXPECT_TRUE(lint_snippet("src/util/x.cpp", "#include \"json.hpp\"\n")
                    .empty());
    // The top-rank directories may include anything.
    EXPECT_TRUE(lint_snippet("tools/x.cpp",
                             "#include \"session/session.hpp\"\n")
                    .empty());
}

TEST(LintLayering, UpwardAndSidewaysIncludesFire) {
    const std::vector<Diagnostic> upward = lint_snippet(
        "src/arch/x.hpp",
        "#pragma once\n#include \"scenario/scenario.hpp\"\n");
    ASSERT_EQ(upward.size(), 1u);
    EXPECT_EQ(upward[0].rule, "layering");
    EXPECT_EQ(upward[0].line, 2u);
    EXPECT_NE(upward[0].message.find(
                  "layer arch (rank 1) may not include layer scenario"),
              std::string::npos);

    // Sideways: ctmc and traffic share rank 2 and stay independent.
    const std::vector<Diagnostic> sideways = lint_snippet(
        "src/ctmc/x.cpp", "#include \"traffic/arrivals.hpp\"\n");
    ASSERT_EQ(sideways.size(), 1u);
    EXPECT_EQ(sideways[0].rule, "layering");
    EXPECT_NE(sideways[0].message.find("same-rank"), std::string::npos);

    // Nothing below the scenario stack may reach the experiments layer.
    const std::vector<Diagnostic> experiments = lint_snippet(
        "src/core/x.cpp", "#include \"core/experiments.hpp\"\n");
    ASSERT_EQ(experiments.size(), 1u);
    EXPECT_EQ(experiments[0].rule, "layering");
}

TEST(LintDeterminism, ScopeExemptionsHold) {
    // exec *is* the threading layer; the solve cache is the one
    // sanctioned lock user outside it.
    EXPECT_TRUE(
        lint_snippet("src/exec/x.cpp", "#include <mutex>\nstd::mutex m;\n")
            .empty());
    EXPECT_TRUE(lint_snippet("src/ctmdp/solve_cache.cpp",
                             "#include <mutex>\nstd::mutex m;\n")
                    .empty());
    // bench/ is measurement code: clocks are its purpose.
    EXPECT_TRUE(
        lint_snippet(
            "bench/x.cpp",
            "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n")
            .empty());
    // tools/ is determinism-scoped.
    const std::vector<Diagnostic> tool_clock = lint_snippet(
        "tools/x.cpp",
        "#include <chrono>\nauto t = std::chrono::steady_clock::now();\n");
    ASSERT_EQ(tool_clock.size(), 1u);
    EXPECT_EQ(tool_clock[0].rule, "wall-clock");
}

TEST(LintDeterminism, PairedHeaderNamesExtendTheCpp) {
    // A member declared unordered in the .hpp and iterated in the .cpp
    // is caught even though the declaration is out of the .cpp's text.
    const std::string header =
        "#pragma once\n#include <string>\n#include <unordered_map>\n"
        "struct Cache {\n"
        "    // socbuf-lint: allow(unordered-container) — lookup-only "
        "index.\n"
        "    std::unordered_map<std::string, int> index_;\n"
        "    int fold() const;\n"
        "};\n";
    const std::string source =
        "#include \"cache.hpp\"\n"
        "int Cache::fold() const {\n"
        "    int sum = 0;\n"
        "    for (const auto& [key, value] : index_) sum += value;\n"
        "    return sum;\n"
        "}\n";
    const std::vector<Diagnostic> found =
        lint_text("cache.cpp", "src/ctmdp/cache.cpp", source, &header);
    ASSERT_EQ(found.size(), 1u);
    EXPECT_EQ(found[0].rule, "unordered-iteration");
    EXPECT_EQ(found[0].line, 4u);
}

TEST(LintSuppressions, CommentTextAndStringLiteralsDoNotFire) {
    // Banned tokens in comments and string literals are data, not code.
    EXPECT_TRUE(lint_snippet("src/core/x.cpp",
                             "// std::rand() in prose is fine\n"
                             "const char* kDoc = \"std::rand()\";\n")
                    .empty());
    // A suppression marker inside a string literal is data too: the
    // linter's own sources print these markers.
    EXPECT_TRUE(lint_snippet("src/core/x.cpp",
                             "const char* kMsg = \"socbuf-lint: "
                             "allow(oops)\";\n")
                    .empty());
}

TEST(LintSuppressions, SameLineAndNextLineForms) {
    // End-of-line form annotates its own line.
    EXPECT_TRUE(
        lint_snippet("src/core/x.cpp",
                     "#include <cstdlib>\n"
                     "int j() { return std::rand(); }  // socbuf-lint: "
                     "allow(random-source) — fixture.\n")
            .empty());
    // A comment-only suppression annotates the next line, not the one
    // after it.
    const std::vector<Diagnostic> gap = lint_snippet(
        "src/core/x.cpp",
        "#include <cstdlib>\n"
        "// socbuf-lint: allow(random-source) — aimed at the blank below.\n"
        "\n"
        "int j() { return std::rand(); }\n");
    ASSERT_EQ(gap.size(), 1u);
    EXPECT_EQ(gap[0].rule, "random-source");
    EXPECT_EQ(gap[0].line, 4u);
}

TEST(LintRules, EveryRuleHasADescription) {
    for (const std::string& rule : rule_ids())
        EXPECT_FALSE(socbuf::lint::rule_description(rule).empty()) << rule;
    EXPECT_TRUE(socbuf::lint::rule_description("no-such-rule").empty());
}

int run_binary(const std::string& arguments) {
    const std::string command = std::string(SOCBUF_LINT_BIN) + " " +
                                arguments + " >/dev/null 2>&1";
    const int status = std::system(command.c_str());
    return WEXITSTATUS(status);
}

TEST(LintBinary, ExitCodesFollowTheContract) {
    // 0: clean input.
    EXPECT_EQ(run_binary("--as src/util/x.hpp " +
                         fixture_path("pragma_once_good.hpp")),
              0);
    // 1: diagnostics fired.
    EXPECT_EQ(run_binary("--as src/arch/x.cpp " +
                         fixture_path("layering_bad.cpp")),
              1);
    // 2: usage errors (no inputs; unreadable path).
    EXPECT_EQ(run_binary(""), 2);
    EXPECT_EQ(run_binary(fixture_path("no_such_fixture.cpp")), 2);
}

}  // namespace
