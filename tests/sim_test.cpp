#include "arch/presets.hpp"
#include "exec/executor.hpp"
#include "queueing/mm1k.hpp"
#include "sim/simulator.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

namespace ss = socbuf::sim;
namespace sa = socbuf::arch;

namespace {

/// One processor sending to another on a single bus: the source queue is
/// exactly an M/M/1/K queue with the bus as its server.
sa::TestSystem single_queue_system(double lambda, double mu) {
    sa::TestSystem sys;
    sys.name = "mm1k";
    const auto bus = sys.architecture.add_bus("bus", mu);
    const auto src = sys.architecture.add_processor("src", bus);
    const auto dst = sys.architecture.add_processor("dst", bus);
    sys.flows.push_back({src, dst, lambda, 1.0, 0.0, 0.0});
    return sys;
}

ss::SimConfig long_config(std::uint64_t seed = 1) {
    ss::SimConfig c;
    c.horizon = 60000.0;
    c.warmup = 2000.0;
    c.seed = seed;
    return c;
}

}  // namespace

TEST(Simulator, Deterministic) {
    const auto sys = sa::figure1_system();
    const std::vector<long> caps(9, 4);
    ss::SimConfig cfg;
    cfg.horizon = 500.0;
    cfg.warmup = 50.0;
    const auto a = ss::simulate(sys, caps, cfg);
    const auto b = ss::simulate(sys, caps, cfg);
    EXPECT_EQ(a.lost, b.lost);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.delivered, b.delivered);
}

TEST(Simulator, SeedsChangeRealization) {
    const auto sys = sa::figure1_system();
    const std::vector<long> caps(9, 4);
    ss::SimConfig cfg;
    cfg.horizon = 500.0;
    cfg.warmup = 50.0;
    cfg.seed = 1;
    const auto a = ss::simulate(sys, caps, cfg);
    cfg.seed = 2;
    const auto b = ss::simulate(sys, caps, cfg);
    EXPECT_NE(a.offered, b.offered);
}

TEST(Simulator, ConservationPerProcessor) {
    // offered = delivered + lost + (a few still in flight at the horizon).
    const auto sys = sa::figure1_system();
    const std::vector<long> caps(9, 3);
    ss::SimConfig cfg;
    cfg.horizon = 2000.0;
    cfg.warmup = 100.0;
    const auto r = ss::simulate(sys, caps, cfg);
    for (std::size_t p = 0; p < r.offered.size(); ++p) {
        EXPECT_GE(r.offered[p], r.delivered[p] + r.lost[p]);
        // In-flight at the end is bounded by total buffer space.
        EXPECT_LE(r.offered[p] - r.delivered[p] - r.lost[p], 9u * 3u);
    }
}

TEST(Simulator, MatchesMm1kClosedForm) {
    const double lambda = 0.8;
    const double mu = 1.0;
    const long k = 5;
    const auto sys = single_queue_system(lambda, mu);
    const std::vector<long> caps{k, 1};  // dst never sends
    const auto r = ss::simulate(sys, caps, long_config());
    const auto exact = socbuf::queueing::analyze_mm1k(
        lambda, mu, static_cast<std::size_t>(k));
    const double measured_blocking =
        static_cast<double>(r.lost[0]) /
        static_cast<double>(r.offered[0]);
    EXPECT_NEAR(measured_blocking, exact.blocking_probability, 0.006);
    EXPECT_NEAR(r.bus_utilization[0],
                exact.utilization, 0.01);
    EXPECT_NEAR(r.site_mean_occupancy[0], exact.mean_occupancy, 0.1);
}

class Mm1kSimSweep
    : public ::testing::TestWithParam<std::tuple<double, long>> {};

TEST_P(Mm1kSimSweep, BlockingTracksTheory) {
    const auto [lambda, k] = GetParam();
    const auto sys = single_queue_system(lambda, 1.0);
    const std::vector<long> caps{k, 1};
    const auto r = ss::simulate(sys, caps, long_config(42));
    const auto exact = socbuf::queueing::analyze_mm1k(
        lambda, 1.0, static_cast<std::size_t>(k));
    const double measured = static_cast<double>(r.lost[0]) /
                            static_cast<double>(r.offered[0]);
    EXPECT_NEAR(measured, exact.blocking_probability,
                0.01 + 0.1 * exact.blocking_probability)
        << "lambda=" << lambda << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Loads, Mm1kSimSweep,
    ::testing::Values(std::make_tuple(0.5, 3L), std::make_tuple(0.8, 5L),
                      std::make_tuple(0.95, 8L), std::make_tuple(1.2, 4L),
                      std::make_tuple(2.0, 6L)));

TEST(Simulator, ZeroCapacityLosesEverything) {
    const auto sys = single_queue_system(1.0, 1.0);
    const std::vector<long> caps{0, 1};
    ss::SimConfig cfg;
    cfg.horizon = 1000.0;
    cfg.warmup = 0.0;
    const auto r = ss::simulate(sys, caps, cfg);
    EXPECT_GT(r.offered[0], 0u);
    EXPECT_EQ(r.lost[0], r.offered[0]);
    EXPECT_EQ(r.delivered[0], 0u);
}

TEST(Simulator, BiggerBuffersNeverLoseMoreOnAverage) {
    const auto sys = single_queue_system(0.9, 1.0);
    ss::SimConfig cfg = long_config(7);
    const auto small = ss::simulate(sys, {2, 1}, cfg);
    const auto big = ss::simulate(sys, {10, 1}, cfg);
    EXPECT_GT(small.lost[0], big.lost[0]);
}

TEST(Simulator, LossAttributionCrossesBridges) {
    // Starve a bridge buffer: losses there must be charged to the ORIGIN.
    auto sys = sa::figure1_system();
    sys.flows.clear();
    sys.flows.push_back({1, 4, 1.0, 1.0, 0.0, 0.0});  // proc 2 -> proc 5
    const auto sites = sa::enumerate_buffer_sites(sys.architecture);
    std::vector<long> caps(sites.size(), 8);
    // First bridge hop (b->f) gets capacity 1: heavy bridge loss.
    const auto bridge_hop = sa::bridge_site(sys.architecture, 0,
                                            sys.architecture.processor(1).bus);
    caps[bridge_hop] = 1;
    ss::SimConfig cfg;
    cfg.horizon = 5000.0;
    cfg.warmup = 100.0;
    const auto r = ss::simulate(sys, caps, cfg);
    EXPECT_GT(r.site_losses[bridge_hop], 0u);
    EXPECT_EQ(r.lost[1], r.site_losses[bridge_hop]);  // charged to origin
    for (std::size_t p = 0; p < r.lost.size(); ++p)
        if (p != 1) { EXPECT_EQ(r.lost[p], 0u); }
}

TEST(Simulator, TimeoutPolicyDropsSlowPackets) {
    const auto sys = single_queue_system(0.95, 1.0);
    ss::SimConfig cfg = long_config(3);
    const auto base = ss::simulate(sys, {8, 1}, cfg);
    ss::SimConfig tmo = cfg;
    tmo.timeout_enabled = true;
    tmo.timeout_threshold = 0.5;  // well below typical waits at rho=0.95
    const auto dropped = ss::simulate(sys, {8, 1}, tmo);
    EXPECT_GT(dropped.lost[0], base.lost[0]);
}

TEST(Simulator, TimeoutThresholdCalibration) {
    const auto sys = single_queue_system(0.9, 1.0);
    const double thr =
        ss::calibrate_timeout_threshold(sys, {6, 1}, long_config(9));
    // Mean wait of an M/M/1/6 at rho=0.9 is around a few service times.
    EXPECT_GT(thr, 0.5);
    EXPECT_LT(thr, 10.0);
    const auto per_site = ss::calibrate_site_timeout_thresholds(
        sys, {6, 1}, long_config(9), 2.0);
    ASSERT_EQ(per_site.size(), 2u);
    EXPECT_NEAR(per_site[0], 2.0 * thr, 0.7 * thr);
    EXPECT_GT(per_site[1], 0.0);  // fallback for the silent site
}

TEST(Simulator, FannedCalibrationWithOneReplicationMatchesSerialBitForBit) {
    // The executor-fanned calibration at one replication must reproduce
    // the classic serial pair — global calibrate_timeout_threshold and
    // per-site calibrate_site_timeout_thresholds — exactly, from a
    // single simulation instead of two.
    const auto sys = single_queue_system(0.9, 1.0);
    const std::vector<long> caps{6, 1};
    const ss::SimConfig cfg = long_config(9);
    const double scale = 2.0;

    const double serial_global =
        scale * ss::calibrate_timeout_threshold(sys, caps, cfg);
    const auto serial_site =
        ss::calibrate_site_timeout_thresholds(sys, caps, cfg, scale);

    socbuf::exec::Executor executor(1);
    const ss::TimeoutCalibration fanned =
        ss::calibrate_timeout(sys, caps, cfg, scale, executor, 1);
    EXPECT_EQ(fanned.global_threshold, serial_global);
    EXPECT_EQ(fanned.site_thresholds, serial_site);
    EXPECT_EQ(ss::calibrate_site_timeout_thresholds(sys, caps, cfg, scale,
                                                    executor, 1),
              serial_site);
}

TEST(Simulator, FannedCalibrationIsBitIdenticalForAnyWorkerCount) {
    const auto sys = sa::figure1_system();
    const std::vector<long> caps(9, 4);
    ss::SimConfig cfg;
    cfg.horizon = 2000.0;
    cfg.warmup = 200.0;
    cfg.seed = 7;

    socbuf::exec::Executor serial(1);
    const ss::TimeoutCalibration reference =
        ss::calibrate_timeout(sys, caps, cfg, 4.0, serial, 6);
    EXPECT_GT(reference.global_threshold, 0.0);
    for (const double threshold : reference.site_thresholds)
        EXPECT_GT(threshold, 0.0);
    for (const std::size_t threads : {2UL, 4UL}) {
        socbuf::exec::Executor executor(threads);
        const ss::TimeoutCalibration fanned =
            ss::calibrate_timeout(sys, caps, cfg, 4.0, executor, 6);
        EXPECT_EQ(fanned.global_threshold, reference.global_threshold)
            << "threads=" << threads;
        EXPECT_EQ(fanned.site_thresholds, reference.site_thresholds)
            << "threads=" << threads;
    }

    // Averaging over replications changes the thresholds (each
    // replication is an independent realization), so the knob is real.
    const ss::TimeoutCalibration single =
        ss::calibrate_timeout(sys, caps, cfg, 4.0, serial, 1);
    EXPECT_NE(single.global_threshold, reference.global_threshold);
}

TEST(Simulator, ArbiterKindsAllRun) {
    const auto sys = sa::figure1_system();
    const std::vector<long> caps(9, 4);
    for (const auto kind :
         {ss::ArbiterKind::kFixedPriority, ss::ArbiterKind::kRoundRobin,
          ss::ArbiterKind::kLongestQueue, ss::ArbiterKind::kWeightedRandom}) {
        ss::SimConfig cfg;
        cfg.horizon = 500.0;
        cfg.warmup = 50.0;
        cfg.arbiter = kind;
        const auto r = ss::simulate(sys, caps, cfg);
        EXPECT_GT(r.total_offered(), 0u);
        EXPECT_GT(r.total_delivered(), 0u);
    }
}

TEST(Simulator, WeightedRandomArbiterUsesWeights) {
    // Two competing queues; a heavily skewed weight vector must skew
    // service (and thus losses) toward the unweighted queue.
    sa::TestSystem sys;
    const auto bus = sys.architecture.add_bus("bus", 1.0);
    const auto a = sys.architecture.add_processor("a", bus);
    const auto b = sys.architecture.add_processor("b", bus);
    const auto c = sys.architecture.add_processor("c", bus);
    sys.flows.push_back({a, c, 0.6, 1.0, 0.0, 0.0});
    sys.flows.push_back({b, c, 0.6, 1.0, 0.0, 0.0});
    ss::SimConfig cfg = long_config(5);
    cfg.arbiter = ss::ArbiterKind::kWeightedRandom;
    cfg.site_weights = {100.0, 1.0, 1.0};
    const auto r = ss::simulate(sys, {6, 6, 1}, cfg);
    EXPECT_LT(r.lost[0], r.lost[1]);
}

TEST(Simulator, RejectsBadConfig) {
    const auto sys = single_queue_system(1.0, 1.0);
    ss::SimConfig cfg;
    cfg.horizon = 10.0;
    cfg.warmup = 20.0;  // warmup past horizon
    EXPECT_THROW(ss::simulate(sys, {1, 1}, cfg),
                 socbuf::util::ContractViolation);
    ss::SimConfig cfg2;
    EXPECT_THROW(ss::simulate(sys, {1}, cfg2),
                 socbuf::util::ContractViolation);
    ss::SimConfig cfg3;
    cfg3.timeout_enabled = true;  // no threshold given
    EXPECT_THROW(ss::simulate(sys, {1, 1}, cfg3),
                 socbuf::util::ContractViolation);
}

TEST(Simulator, ReplicationAveragesAreStable) {
    const auto sys = single_queue_system(0.9, 1.0);
    ss::SimConfig cfg;
    cfg.horizon = 3000.0;
    cfg.warmup = 200.0;
    const auto reps = ss::replicate_losses(sys, {4, 1}, cfg, 5);
    ASSERT_EQ(reps.mean_lost_per_processor.size(), 2u);
    EXPECT_GT(reps.mean_lost_per_processor[0], 0.0);
    EXPECT_GT(reps.stddev_lost_per_processor[0], 0.0);
    EXPECT_NEAR(reps.mean_total_lost, reps.mean_lost_per_processor[0], 1e-9);
}
