#include "arch/presets.hpp"
#include "core/allocation.hpp"
#include "core/engine.hpp"
#include "core/joint.hpp"
#include "core/subsystem_model.hpp"
#include "ctmdp/lp_solver.hpp"
#include "ctmdp/occupation.hpp"
#include "ctmdp/solver.hpp"
#include "split/splitter.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

namespace sc = socbuf::core;
namespace sa = socbuf::arch;
namespace sp = socbuf::split;

namespace {

const sa::TestSystem& figure1() {
    static const auto sys = sa::figure1_system();
    return sys;
}

const sp::SplitResult& figure1_split() {
    static const auto split = sp::split_architecture(figure1());
    return split;
}

}  // namespace

TEST(Allocation, UniformExhaustsBudgetOverActiveSites) {
    const auto alloc = sc::uniform_allocation(figure1_split(), 45);
    EXPECT_EQ(sc::allocation_total(alloc), 45);
    // 9 active sites (5 processors + 4 inserted bridge buffers) -> 5 each.
    for (const auto& sub : figure1_split().subsystems)
        for (const auto& f : sub.flows) EXPECT_EQ(alloc[f.site], 5);
}

TEST(Allocation, ProportionalFollowsRates) {
    const auto& split = figure1_split();
    const auto alloc = sc::proportional_allocation(split, 90);
    EXPECT_EQ(sc::allocation_total(alloc), 90);
    // Busier sites receive at least as much as quieter ones.
    double hi_rate = 0.0;
    double lo_rate = 1e18;
    sa::SiteId hi = 0;
    sa::SiteId lo = 0;
    for (const auto& sub : split.subsystems) {
        for (const auto& f : sub.flows) {
            if (f.arrival_rate > hi_rate) {
                hi_rate = f.arrival_rate;
                hi = f.site;
            }
            if (f.arrival_rate < lo_rate) {
                lo_rate = f.arrival_rate;
                lo = f.site;
            }
        }
    }
    EXPECT_GE(alloc[hi], alloc[lo]);
}

TEST(Allocation, DemandAllocationExhaustsBudget) {
    const auto alloc = sc::demand_allocation(figure1_split(), 60);
    EXPECT_EQ(sc::allocation_total(alloc), 60);
    for (const auto& sub : figure1_split().subsystems)
        for (const auto& f : sub.flows) EXPECT_GE(alloc[f.site], 1);
}

TEST(SubsystemModel, StateSpaceAndIndexing) {
    const auto& split = figure1_split();
    // Bus b subsystem: processors 2, 3 + 1 bridge buffer = 3 flows.
    const sp::Subsystem* bus_b = nullptr;
    for (const auto& sub : split.subsystems)
        if (sub.bus_name == "b") bus_b = &sub;
    ASSERT_NE(bus_b, nullptr);
    ASSERT_EQ(bus_b->flows.size(), 3u);
    std::vector<long> caps{2, 3, 1};
    std::vector<double> rates{0.5, 0.4, 0.3};
    const sc::SubsystemCtmdp model(*bus_b, caps, rates);
    EXPECT_EQ(model.model().state_count(), 3u * 4u * 2u);
    // Occupancy decoding round-trips the mixed-radix encoding.
    for (std::size_t s = 0; s < model.model().state_count(); ++s) {
        long reconstructed = 0;
        long stride = 1;
        for (std::size_t f = 0; f < caps.size(); ++f) {
            reconstructed += model.occupancy(s, f) * stride;
            stride *= caps[f] + 1;
        }
        EXPECT_EQ(static_cast<std::size_t>(reconstructed), s);
    }
}

TEST(SubsystemModel, CostIsWeightedLossRate) {
    const auto& split = figure1_split();
    const auto& sub = split.subsystems.front();
    const std::size_t n = sub.flows.size();
    const sc::SubsystemCtmdp model(sub, std::vector<long>(n, 1),
                                   std::vector<double>(n, 1.0));
    // State with every queue full: cost = sum of weights * rates.
    const std::size_t full = model.model().state_count() - 1;
    double expected = 0.0;
    for (const auto& f : sub.flows) expected += f.weight * 1.0;
    EXPECT_NEAR(model.loss_rate(full), expected, 1e-12);
    EXPECT_NEAR(model.loss_rate(0), 0.0, 1e-12);
}

TEST(SubsystemModel, LpSolutionBeatsArbitraryPolicyAndMarginalsAreSane) {
    const auto& split = figure1_split();
    const sp::Subsystem* bus_b = nullptr;
    for (const auto& sub : split.subsystems)
        if (sub.bus_name == "b") bus_b = &sub;
    ASSERT_NE(bus_b, nullptr);
    std::vector<long> caps(bus_b->flows.size(), 3);
    std::vector<double> rates;
    for (const auto& f : bus_b->flows) rates.push_back(f.arrival_rate);
    const sc::SubsystemCtmdp model(*bus_b, caps, rates);
    const auto lp = socbuf::ctmdp::solve_average_cost_lp(model.model());
    ASSERT_EQ(lp.status, socbuf::lp::SolveStatus::kOptimal);
    // Marginals are probability distributions with means within caps.
    socbuf::linalg::Vector pi(lp.state_probability.begin(),
                              lp.state_probability.end());
    for (std::size_t f = 0; f < model.flow_count(); ++f) {
        const auto marg = model.flow_marginal(pi, f);
        double total = 0.0;
        for (double p : marg) total += p;
        EXPECT_NEAR(total, 1.0, 1e-6);
        EXPECT_LE(socbuf::ctmdp::marginal_mean(marg),
                  static_cast<double>(caps[f]));
    }
    // Service shares form a distribution over flows.
    const auto shares = model.service_shares(lp.occupation);
    EXPECT_NEAR(std::accumulate(shares.begin(), shares.end(), 0.0), 1.0,
                1e-6);
}

TEST(Joint, JointLpMatchesPriceDecomposition) {
    // The equivalence behind "solve all the equations in one go": the
    // explicit joint LP and its Lagrangian decomposition land on the same
    // optimal loss (within bisection tolerance).
    const auto& split = figure1_split();
    const auto alloc = sc::uniform_allocation(split, 27);  // 3 per site
    const auto models = sc::build_subsystem_models(split, alloc, 3);
    // Find a budget that is binding but feasible: the occupancy range a
    // policy can influence is bounded below by the heavily-priced solve.
    const auto free_run = sc::solve_unconstrained(models);
    ASSERT_TRUE(free_run.solved);
    const auto squeezed = sc::solve_price_decomposed(
        models, 1e-6, /*rho_max=*/64.0, /*bisection_steps=*/0);
    ASSERT_TRUE(squeezed.solved);
    const double min_occ = squeezed.total_expected_occupancy;
    ASSERT_LT(min_occ, free_run.total_expected_occupancy);
    const double budget =
        0.5 * (min_occ + free_run.total_expected_occupancy);

    const auto joint = sc::solve_joint_lp(models, budget);
    ASSERT_TRUE(joint.solved);
    EXPECT_LE(joint.total_expected_occupancy, budget + 1e-6);

    const auto priced = sc::solve_price_decomposed(models, budget);
    ASSERT_TRUE(priced.solved);
    EXPECT_LE(priced.total_expected_occupancy, budget + 1e-4);
    EXPECT_GT(priced.occupancy_price, 0.0);
    EXPECT_NEAR(joint.total_loss_rate, priced.total_loss_rate,
                0.05 * std::max(1e-3, joint.total_loss_rate));
    // Constraining occupancy can only increase the optimal loss.
    EXPECT_GE(joint.total_loss_rate, free_run.total_loss_rate - 1e-9);
}

TEST(Joint, SlackBudgetReducesToUnconstrained) {
    const auto& split = figure1_split();
    const auto alloc = sc::uniform_allocation(split, 27);
    const auto models = sc::build_subsystem_models(split, alloc, 3);
    const auto free_run = sc::solve_unconstrained(models);
    ASSERT_TRUE(free_run.solved);
    const auto priced = sc::solve_price_decomposed(
        models, free_run.total_expected_occupancy * 2.0);
    ASSERT_TRUE(priced.solved);
    EXPECT_DOUBLE_EQ(priced.occupancy_price, 0.0);
    EXPECT_NEAR(priced.total_loss_rate, free_run.total_loss_rate, 1e-9);
}

TEST(Engine, OptionValidation) {
    sc::SizingOptions opts;
    opts.total_budget = 0;
    EXPECT_THROW(sc::BufferSizingEngine{opts},
                 socbuf::util::ContractViolation);
    sc::SizingOptions opts2;
    opts2.iterations = 0;
    EXPECT_THROW(sc::BufferSizingEngine{opts2},
                 socbuf::util::ContractViolation);
    sc::SizingOptions opts3;
    opts3.tail_mass = 1.5;
    EXPECT_THROW(sc::BufferSizingEngine{opts3},
                 socbuf::util::ContractViolation);
}

TEST(Engine, Figure1EndToEnd) {
    sc::SizingOptions opts;
    opts.total_budget = 36;
    opts.iterations = 4;
    opts.sim.horizon = 1500.0;
    opts.sim.warmup = 150.0;
    opts.sim.seed = 11;
    const sc::BufferSizingEngine engine(opts);
    const auto report = engine.run(figure1());

    EXPECT_EQ(sc::allocation_total(report.initial), 36);
    EXPECT_EQ(sc::allocation_total(report.best), 36);
    EXPECT_FALSE(report.history.empty());
    EXPECT_GT(report.lp_solves + report.vi_solves, 0u);
    // The engine never returns something worse than the uniform baseline.
    std::vector<double> weights(figure1().flows.size(), 1.0);
    EXPECT_LE(report.after.weighted_loss(weights),
              report.before.weighted_loss(weights) + 1e-9);
}

TEST(Engine, BudgetMonotonicityOfPostLoss) {
    // More budget -> the optimized system loses no more (statistically;
    // fixed seeds make this deterministic here).
    double previous = 1e18;
    for (const long budget : {18L, 36L, 90L}) {
        sc::SizingOptions opts;
        opts.total_budget = budget;
        opts.iterations = 3;
        opts.sim.horizon = 1500.0;
        opts.sim.warmup = 150.0;
        opts.sim.seed = 13;
        const sc::BufferSizingEngine engine(opts);
        const auto report = engine.run(figure1());
        const double post = static_cast<double>(report.after.total_lost());
        EXPECT_LE(post, previous + 1.0) << "budget " << budget;
        previous = post;
    }
}

TEST(Engine, ForcedSolverChoicesAgreeOnDirection) {
    sc::SizingOptions lp_opts;
    lp_opts.total_budget = 36;
    lp_opts.iterations = 2;
    lp_opts.solver = sc::SolverChoice::kLp;
    lp_opts.sim.horizon = 1000.0;
    lp_opts.sim.warmup = 100.0;
    const auto lp_report = sc::BufferSizingEngine(lp_opts).run(figure1());
    EXPECT_GT(lp_report.lp_solves, 0u);
    EXPECT_EQ(lp_report.vi_solves, 0u);

    sc::SizingOptions vi_opts = lp_opts;
    vi_opts.solver = sc::SolverChoice::kValueIteration;
    const auto vi_report = sc::BufferSizingEngine(vi_opts).run(figure1());
    EXPECT_EQ(vi_report.lp_solves, 0u);
    EXPECT_GT(vi_report.vi_solves, 0u);

    // Both must improve on (or match) the uniform baseline.
    EXPECT_LE(vi_report.after.total_lost(), vi_report.before.total_lost());
    EXPECT_LE(lp_report.after.total_lost(), lp_report.before.total_lost());
}

TEST(Engine, ScoresCoverActiveSitesOnly) {
    sc::SizingOptions opts;
    opts.total_budget = 36;
    opts.iterations = 2;
    opts.sim.horizon = 800.0;
    opts.sim.warmup = 100.0;
    const auto report = sc::BufferSizingEngine(opts).run(figure1());
    for (const auto& sub : report.split.subsystems)
        for (const auto& f : sub.flows)
            EXPECT_GT(report.site_scores[f.site], 0.0);
}

TEST(Engine, SwitchingStatesBoundedByConstraints) {
    // Unconstrained subsystem LPs should produce (near-)deterministic
    // policies: Feinberg's bound says randomization only appears with side
    // constraints.
    sc::SizingOptions opts;
    opts.total_budget = 36;
    opts.iterations = 1;
    opts.solver = sc::SolverChoice::kLp;
    opts.sim.horizon = 800.0;
    opts.sim.warmup = 100.0;
    const auto report = sc::BufferSizingEngine(opts).run(figure1());
    EXPECT_EQ(report.switching_states, 0u);
}

TEST(Engine, WeightedArbiterUsesCtmdpServiceShares) {
    // The engine exports per-site service weights from the CTMDP policy;
    // feeding them to the weighted-random arbiter must produce a valid
    // simulation (and the weights must cover every active site).
    sc::SizingOptions opts;
    opts.total_budget = 36;
    opts.iterations = 2;
    opts.sim.horizon = 800.0;
    opts.sim.warmup = 100.0;
    const auto report = sc::BufferSizingEngine(opts).run(figure1());
    socbuf::sim::SimConfig cfg = opts.sim;
    cfg.arbiter = socbuf::sim::ArbiterKind::kWeightedRandom;
    cfg.site_weights = report.site_service_weights;
    const auto r = socbuf::sim::simulate(figure1(), report.best, cfg);
    EXPECT_GT(r.total_delivered(), 0u);
    for (const auto& sub : report.split.subsystems) {
        double bus_total = 0.0;
        for (const auto& f : sub.flows)
            bus_total += report.site_service_weights[f.site];
        EXPECT_NEAR(bus_total, 1.0, 1e-6) << "bus " << sub.bus_name;
    }
}

TEST(Engine, EarlyStopCanBeDisabled) {
    sc::SizingOptions opts;
    opts.total_budget = 36;
    opts.iterations = 4;
    opts.early_stop = false;
    opts.sim.horizon = 600.0;
    opts.sim.warmup = 100.0;
    const auto report = sc::BufferSizingEngine(opts).run(figure1());
    EXPECT_EQ(report.history.size(), 4u);  // all rounds run
}

TEST(Engine, HistoryTracksBestAllocation) {
    sc::SizingOptions opts;
    opts.total_budget = 36;
    opts.iterations = 3;
    opts.sim.horizon = 800.0;
    opts.sim.warmup = 100.0;
    const auto report = sc::BufferSizingEngine(opts).run(figure1());
    std::vector<double> weights(figure1().flows.size(), 1.0);
    const double best_weighted = report.after.weighted_loss(weights);
    const double initial_weighted = report.before.weighted_loss(weights);
    for (const auto& rec : report.history)
        EXPECT_GE(rec.weighted_loss + 1e-9,
                  std::min(best_weighted, initial_weighted));
}

TEST(SolverLayer, RegistryAgreesOnSubsystemCtmdps) {
    // LP, VI and PI must agree — gain and greedy policy — on small
    // subsystem models, solved through the unified registry.
    const auto& split = figure1_split();
    socbuf::ctmdp::SolverRegistry registry;
    for (const auto& sub : split.subsystems) {
        std::vector<long> caps(sub.flows.size(), 2);
        std::vector<double> rates;
        for (const auto& f : sub.flows) rates.push_back(f.arrival_rate);
        const sc::SubsystemCtmdp model(sub, caps, rates);

        std::vector<socbuf::ctmdp::SubsystemSolution> sols;
        for (const auto choice :
             {sc::SolverChoice::kLp, sc::SolverChoice::kValueIteration,
              sc::SolverChoice::kPolicyIteration}) {
            socbuf::ctmdp::DispatchOptions d;
            d.choice = choice;
            sols.push_back(registry.solve(model.model(), d));
        }
        EXPECT_NEAR(sols[1].gain, sols[0].gain, 1e-6)
            << "bus " << sub.bus_name;
        EXPECT_NEAR(sols[2].gain, sols[0].gain, 1e-6)
            << "bus " << sub.bus_name;
        EXPECT_EQ(sols[1].policy.mode(), sols[2].policy.mode())
            << "bus " << sub.bus_name;
    }
    const auto stats = registry.stats();
    EXPECT_EQ(stats.lp_solves, split.subsystems.size());
    EXPECT_EQ(stats.vi_solves, split.subsystems.size());
    EXPECT_EQ(stats.pi_solves, split.subsystems.size());
}

TEST(Engine, PolicyIterationSelectableEndToEnd) {
    sc::SizingOptions opts;
    opts.total_budget = 36;
    opts.iterations = 2;
    opts.solver = sc::SolverChoice::kPolicyIteration;
    opts.sim.horizon = 1000.0;
    opts.sim.warmup = 100.0;
    const auto report = sc::BufferSizingEngine(opts).run(figure1());
    EXPECT_GT(report.pi_solves, 0u);
    EXPECT_EQ(report.lp_solves, 0u);
    EXPECT_EQ(report.vi_solves, 0u);
    EXPECT_LE(report.after.total_lost(), report.before.total_lost());

    // PI steers the sizing to the same place the LP does (the solvers
    // agree, so the K-switching translation sees the same inputs).
    sc::SizingOptions lp_opts = opts;
    lp_opts.solver = sc::SolverChoice::kLp;
    const auto lp_report = sc::BufferSizingEngine(lp_opts).run(figure1());
    EXPECT_EQ(report.best, lp_report.best);
}

TEST(Engine, ThreadCountDoesNotChangeTheReport) {
    auto run_with = [](std::size_t threads) {
        sc::SizingOptions opts;
        opts.total_budget = 36;
        opts.iterations = 3;
        opts.threads = threads;
        opts.sim.horizon = 1000.0;
        opts.sim.warmup = 100.0;
        return sc::BufferSizingEngine(opts).run(figure1());
    };
    const auto serial = run_with(1);
    for (const std::size_t threads : {2UL, 4UL}) {
        const auto parallel = run_with(threads);
        EXPECT_EQ(parallel.best, serial.best) << "threads " << threads;
        EXPECT_EQ(parallel.after.total_lost(), serial.after.total_lost())
            << "threads " << threads;
        EXPECT_EQ(parallel.lp_solves, serial.lp_solves);
        ASSERT_EQ(parallel.history.size(), serial.history.size());
        for (std::size_t i = 0; i < serial.history.size(); ++i)
            EXPECT_EQ(parallel.history[i].allocation,
                      serial.history[i].allocation)
                << "iteration " << i;
    }
}

TEST(Engine, EvalReplicationOptionValidationAndDefaultPath) {
    sc::SizingOptions bad;
    bad.eval_replications = 0;
    EXPECT_THROW(sc::BufferSizingEngine{bad},
                 socbuf::util::ContractViolation);

    // eval_replications = 1 (the default) is the legacy single-sim round,
    // op for op.
    auto run_with = [](std::size_t eval_replications) {
        sc::SizingOptions opts;
        opts.total_budget = 36;
        opts.iterations = 3;
        opts.eval_replications = eval_replications;
        opts.sim.horizon = 1000.0;
        opts.sim.warmup = 100.0;
        return sc::BufferSizingEngine(opts).run(figure1());
    };
    const auto legacy = run_with(1);
    const auto replicated = run_with(3);
    EXPECT_EQ(legacy.best, run_with(1).best);
    ASSERT_FALSE(replicated.history.empty());
    // Replicated rounds score on means — a different (smoother) signal,
    // but still a budget-exhausting allocation.
    EXPECT_EQ(sc::allocation_total(replicated.best), 36);
}

TEST(Engine, ReplicatedRoundEvalsAreBitIdenticalForAnyWorkerCount) {
    auto run_with = [](std::size_t threads) {
        sc::SizingOptions opts;
        opts.total_budget = 36;
        opts.iterations = 3;
        opts.eval_replications = 4;  // fans the round sims across workers
        opts.threads = threads;
        opts.sim.horizon = 800.0;
        opts.sim.warmup = 80.0;
        return sc::BufferSizingEngine(opts).run(figure1());
    };
    const auto serial = run_with(1);
    for (const std::size_t threads : {2UL, 4UL}) {
        const auto parallel = run_with(threads);
        EXPECT_EQ(parallel.best, serial.best) << "threads " << threads;
        ASSERT_EQ(parallel.history.size(), serial.history.size());
        for (std::size_t i = 0; i < serial.history.size(); ++i) {
            EXPECT_EQ(parallel.history[i].allocation,
                      serial.history[i].allocation)
                << "iteration " << i;
            EXPECT_EQ(parallel.history[i].weighted_loss,
                      serial.history[i].weighted_loss)
                << "iteration " << i;
        }
    }
}

TEST(Engine, ImprovementIsZeroWhenBaselineLossIsZero) {
    // A zero-loss baseline must not divide by zero (0, not NaN).
    sc::SizingReport report;
    EXPECT_EQ(report.improvement(), 0.0);
    EXPECT_FALSE(std::isnan(report.improvement()));
}
