#include "des/scheduler.hpp"
#include "des/stats.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sd = socbuf::des;

TEST(Scheduler, FiresInTimeOrder) {
    sd::Scheduler sched;
    std::vector<int> order;
    sched.schedule_at(2.0, [&] { order.push_back(2); });
    sched.schedule_at(1.0, [&] { order.push_back(1); });
    sched.schedule_at(3.0, [&] { order.push_back(3); });
    sched.run_to_exhaustion();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sched.now(), 3.0);
    EXPECT_EQ(sched.fired_count(), 3u);
}

TEST(Scheduler, TieBreaksFifo) {
    sd::Scheduler sched;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        sched.schedule_at(1.0, [&order, i] { order.push_back(i); });
    sched.run_to_exhaustion();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, EventsMayScheduleMoreEvents) {
    sd::Scheduler sched;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 10) sched.schedule_after(1.0, chain);
    };
    sched.schedule_at(0.0, chain);
    sched.run_to_exhaustion();
    EXPECT_EQ(fired, 10);
    EXPECT_DOUBLE_EQ(sched.now(), 9.0);
}

TEST(Scheduler, RunUntilStopsAtHorizon) {
    sd::Scheduler sched;
    int fired = 0;
    sched.schedule_at(1.0, [&] { ++fired; });
    sched.schedule_at(5.0, [&] { ++fired; });
    sched.run_until(2.0);
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(sched.now(), 2.0);
    EXPECT_EQ(sched.pending(), 1u);
    sched.run_until(5.0);  // boundary event still fires
    EXPECT_EQ(fired, 2);
}

TEST(Scheduler, CancelSuppressesEvent) {
    sd::Scheduler sched;
    int fired = 0;
    const auto id = sched.schedule_at(1.0, [&] { ++fired; });
    sched.schedule_at(2.0, [&] { ++fired; });
    EXPECT_TRUE(sched.cancel(id));
    EXPECT_FALSE(sched.cancel(id));       // double-cancel is a no-op
    EXPECT_FALSE(sched.cancel(999999u));  // unknown id is a no-op
    sched.run_to_exhaustion();
    EXPECT_EQ(fired, 1);
}

TEST(Scheduler, PastSchedulingRejected) {
    sd::Scheduler sched;
    sched.schedule_at(5.0, [] {});
    sched.run_to_exhaustion();
    EXPECT_THROW(sched.schedule_at(1.0, [] {}),
                 socbuf::util::ContractViolation);
    EXPECT_THROW(sched.schedule_after(-1.0, [] {}),
                 socbuf::util::ContractViolation);
}

TEST(Scheduler, StepReturnsFalseWhenEmpty) {
    sd::Scheduler sched;
    EXPECT_FALSE(sched.step());
}

TEST(Tally, MomentsAndExtrema) {
    sd::Tally t;
    for (double v : {2.0, 4.0, 6.0}) t.observe(v);
    EXPECT_EQ(t.count(), 3u);
    EXPECT_DOUBLE_EQ(t.mean(), 4.0);
    EXPECT_NEAR(t.variance(), 4.0, 1e-12);
    EXPECT_NEAR(t.stddev(), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(t.min(), 2.0);
    EXPECT_DOUBLE_EQ(t.max(), 6.0);
    EXPECT_DOUBLE_EQ(t.total(), 12.0);
}

TEST(Tally, EmptyIsSafe) {
    const sd::Tally t;
    EXPECT_EQ(t.count(), 0u);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
    EXPECT_DOUBLE_EQ(t.variance(), 0.0);
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
    sd::TimeWeighted tw;
    tw.update(0.0, 0.0);
    tw.update(1.0, 2.0);  // signal was 0 on [0,1)
    tw.update(3.0, 1.0);  // signal was 2 on [1,3)
    // average over [0,4]: (0*1 + 2*2 + 1*1) / 4 = 1.25
    EXPECT_DOUBLE_EQ(tw.average(4.0), 1.25);
    EXPECT_DOUBLE_EQ(tw.current(), 1.0);
    EXPECT_DOUBLE_EQ(tw.max(), 2.0);
}

TEST(TimeWeighted, RejectsTimeTravel) {
    sd::TimeWeighted tw;
    tw.update(1.0, 1.0);
    EXPECT_THROW(tw.update(0.5, 2.0), socbuf::util::ContractViolation);
}
