// The scenario JSON schema: round-trip fidelity for every built-in
// preset, strict validation with path-naming diagnostics, and the
// builder that replaces aggregate-initialization sprawl.
#include "scenario/builder.hpp"
#include "scenario/scenario.hpp"
#include "scenario/scenario_io.hpp"
#include "util/contracts.hpp"
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace ss = socbuf::scenario;
using socbuf::util::JsonValue;

namespace {

/// Dump -> parse -> from_json, the full wire trip.
ss::ScenarioSpec round_trip(const ss::ScenarioSpec& spec) {
    return ss::spec_from_json(JsonValue::parse(ss::to_json(spec).dump()));
}

/// Expect spec_from_json(text) to throw, with the path named in the
/// diagnostic.
void expect_io_error(const std::string& text, const std::string& path) {
    try {
        (void)ss::spec_from_json(JsonValue::parse(text));
        FAIL() << "expected ScenarioIoError for " << text;
    } catch (const ss::ScenarioIoError& error) {
        EXPECT_EQ(error.path(), path) << error.what();
        EXPECT_NE(std::string(error.what()).find(path), std::string::npos)
            << "diagnostic must lead with the JSON path: " << error.what();
    }
}

}  // namespace

TEST(ScenarioIo, EveryPresetRoundTripsBitIdentically) {
    // The contract of the issue: from_json(parse(dump(to_json(spec))))
    // == spec for every built-in preset, field for field.
    const ss::ScenarioRegistry registry;
    ASSERT_GT(registry.size(), 0u);
    for (const auto& spec : registry.specs()) {
        const ss::ScenarioSpec again = round_trip(spec);
        EXPECT_TRUE(again == spec) << spec.name;
        // And the dump itself is a fixed point (shortest round-trip
        // doubles), so exported catalog files are stable byte for byte.
        EXPECT_EQ(ss::to_json(again).dump(2), ss::to_json(spec).dump(2))
            << spec.name;
    }
}

TEST(ScenarioIo, RoundTripCoversEveryKnob) {
    // A spec with every field off its default — catches a to_json that
    // forgets a field (the round trip would silently reseat the default).
    ss::ScenarioSpec spec =
        ss::ScenarioBuilder("everything")
            .description("all knobs off-default")
            .testbench(ss::Testbench::kNetworkProcessor)
            .variant("a", {3, 1.5, 0.75, {}, true})
            .variant("b", {4, 1.0, 1.0, {2, 3, 4, 5}, false})
            .budgets({17, 40})
            .replications(3)
            .sizing_iterations(5)
            .sizing_eval_replications(2)
            .solver(socbuf::core::SolverChoice::kValueIteration)
            .gauss_seidel()
            .modulated_models()
            .timeout_policy(2.5)
            .calibration_replications(4)
            .insertion({true, {"bf:b>f", "bg:b>g"}, 2.0, 3.0, 6})
            .horizon(900.0, 90.0)
            .seed(123456789)
            .arbiter(socbuf::sim::ArbiterKind::kLongestQueue)
            .build();
    EXPECT_TRUE(round_trip(spec) == spec);
}

TEST(ScenarioIo, ArbitraryFiniteDoublesRoundTripBitIdentically) {
    // Preset values are "nice" decimals; the schema contract must hold
    // for *any* finite double a user computes (0.1 + 0.2 has no short
    // decimal form; 1/3 and a subnormal-scale horizon ratio exercise the
    // shortest-round-trip emitter hardest). Field-for-field equality
    // after dump -> parse -> from_json means every number came back in
    // the exact same bits.
    ss::ScenarioSpec spec;
    spec.name = "arbitrary-doubles";
    spec.variants.clear();
    {
        ss::ScenarioVariant v;
        v.label = "awkward";
        v.np.load_scale = 0.1 + 0.2;       // 0.30000000000000004
        v.np.bus_rate_scale = 1.0 / 3.0;   // repeating binary fraction
        spec.variants.push_back(v);
    }
    spec.timeout_threshold_scale = 4.0 * (0.1 + 0.2);
    spec.evaluate_timeout_policy = true;
    spec.sim.horizon = 4000.0 * (1.0 + 1e-15);  // differs in the last ulps
    spec.sim.warmup = 4000.0 / 7.0;
    const ss::ScenarioSpec again = round_trip(spec);
    EXPECT_TRUE(again == spec);
    EXPECT_EQ(again.variants[0].np.load_scale, 0.1 + 0.2);
    EXPECT_EQ(again.sim.horizon, spec.sim.horizon);
    // The emitted document is itself a fixed point of dump -> parse.
    EXPECT_EQ(ss::to_json(again).dump(2), ss::to_json(spec).dump(2));
}

TEST(ScenarioIo, AbsentKeysKeepDefaults) {
    const auto spec =
        ss::spec_from_json(JsonValue::parse("{\"name\": \"minimal\"}"));
    const ss::ScenarioSpec defaults = [] {
        ss::ScenarioSpec s;
        s.name = "minimal";
        return s;
    }();
    EXPECT_TRUE(spec == defaults);
}

TEST(ScenarioIo, SchemaVersionIsStampedAndEnforced) {
    // Every emitted document leads with the schema version...
    const ss::ScenarioSpec spec = [] {
        ss::ScenarioSpec s;
        s.name = "versioned";
        return s;
    }();
    const JsonValue doc = ss::to_json(spec);
    ASSERT_TRUE(doc.contains("version"));
    EXPECT_EQ(doc.at("version").as_number(), ss::kScenarioSchemaVersion);
    // ...an explicit legacy version parses, absent means legacy
    // (AbsentKeysKeepDefaults), and versions this reader does not speak
    // are rejected at $.version before any other key is validated.
    EXPECT_TRUE(ss::spec_from_json(JsonValue::parse(
                    "{\"version\": 1, \"name\": \"v\"}")) ==
                ss::spec_from_json(JsonValue::parse("{\"name\": \"v\"}")));
    expect_io_error("{\"version\": 0, \"name\": \"v\"}", "$.version");
    expect_io_error("{\"version\": 3, \"name\": \"v\"}", "$.version");
    expect_io_error("{\"version\": \"1\", \"name\": \"v\"}", "$.version");
    // Rejection happens up front: a future-version document fails on the
    // version line even when later keys would also be unknown.
    expect_io_error("{\"version\": 3, \"name\": \"v\", \"zzz\": 1}",
                    "$.version");
}

TEST(ScenarioIo, VersionTwoRequiresTheInsertionBlock) {
    // The v2-defining key: a version-2 document must declare $.insertion
    // (even just {"search": false}), and a legacy document must not —
    // there the key is unknown and strict validation rejects it.
    expect_io_error("{\"version\": 2, \"name\": \"v\"}", "$.insertion");
    expect_io_error(
        "{\"version\": 1, \"name\": \"v\", "
        "\"insertion\": {\"search\": false}}",
        "$.insertion");
    const auto v2 = ss::spec_from_json(JsonValue::parse(
        "{\"version\": 2, \"name\": \"v\", "
        "\"insertion\": {\"search\": false}}"));
    const auto legacy =
        ss::spec_from_json(JsonValue::parse("{\"name\": \"v\"}"));
    EXPECT_TRUE(v2 == legacy);  // search off is the legacy behavior
    // The insertion block itself is strictly validated, path and all.
    expect_io_error(
        "{\"version\": 2, \"name\": \"v\", "
        "\"insertion\": {\"search\": 1}}",
        "$.insertion.search");
    expect_io_error(
        "{\"version\": 2, \"name\": \"v\", "
        "\"insertion\": {\"search\": true, \"candidates\": [\"\"]}}",
        "$.insertion.candidates[0]");
    expect_io_error(
        "{\"version\": 2, \"name\": \"v\", "
        "\"insertion\": {\"search\": true, \"bridge_site_cost\": 0}}",
        "$.insertion.bridge_site_cost");
    expect_io_error(
        "{\"version\": 2, \"name\": \"v\", "
        "\"insertion\": {\"search\": true, \"exhaustive_limit\": -1}}",
        "$.insertion.exhaustive_limit");
    expect_io_error(
        "{\"version\": 2, \"name\": \"v\", "
        "\"insertion\": {\"search\": true, \"zzz\": 1}}",
        "$.insertion.zzz");
}

TEST(ScenarioIo, DiagnosticsNameTheJsonPath) {
    expect_io_error("{\"name\": \"x\", \"budgetz\": [3]}", "$.budgetz");
    expect_io_error("{\"name\": \"x\", \"budgets\": \"320\"}", "$.budgets");
    expect_io_error("{\"name\": \"x\", \"budgets\": []}", "$.budgets");
    expect_io_error("{\"name\": \"x\", \"budgets\": [0]}", "$.budgets[0]");
    expect_io_error("{\"name\": \"x\", \"budgets\": [32.5]}", "$.budgets[0]");
    expect_io_error("{\"name\": \"\"}", "$.name");
    expect_io_error("{\"budgets\": [3]}", "$");  // missing name
    expect_io_error("{\"name\": \"x\", \"testbench\": \"tb\"}",
                    "$.testbench");
    expect_io_error("{\"name\": \"x\", \"solver\": \"magic\"}", "$.solver");
    expect_io_error("{\"name\": \"x\", \"replications\": 0}",
                    "$.replications");
    expect_io_error(
        "{\"name\": \"x\", \"variants\": [{\"np\": {\"load_scale\": 0}}]}",
        "$.variants[0].np.load_scale");
    expect_io_error(
        "{\"name\": \"x\", \"variants\": [{}, {\"np\": {\"pe\": 1}}]}",
        "$.variants[1].np.pe");
    expect_io_error(
        "{\"name\": \"x\", \"variants\": "
        "[{\"np\": {\"cluster_pe\": [2, 2]}}]}",
        "$.variants[0].np.cluster_pe");
    expect_io_error("{\"name\": \"x\", \"sim\": {\"horizon\": -1}}",
                    "$.sim.horizon");
    expect_io_error(
        "{\"name\": \"x\", \"sim\": {\"horizon\": 10, \"warmup\": 20}}",
        "$.sim.warmup");
    // With no explicit warmup the conflict comes from the horizon
    // undercutting the *default* warmup — blame the key the document
    // actually wrote.
    expect_io_error("{\"name\": \"x\", \"sim\": {\"horizon\": 100}}",
                    "$.sim.horizon");
    expect_io_error("{\"name\": \"x\", \"sim\": {\"arbiter\": \"coin\"}}",
                    "$.sim.arbiter");
    expect_io_error("{\"name\": \"x\", \"sim\": {\"seed\": 1.5}}",
                    "$.sim.seed");
}

TEST(ScenarioIo, CatalogDocumentsParseAndReportPerScenarioPaths) {
    const auto specs = ss::specs_from_json(JsonValue::parse(
        "{\"scenarios\": [{\"name\": \"a\"}, {\"name\": \"b\"}]}"));
    ASSERT_EQ(specs.size(), 2u);
    EXPECT_EQ(specs[0].name, "a");
    EXPECT_EQ(specs[1].name, "b");
    try {
        (void)ss::specs_from_json(JsonValue::parse(
            "{\"scenarios\": [{\"name\": \"a\"}, {\"name\": \"b\", "
            "\"budgets\": []}]}"));
        FAIL() << "expected ScenarioIoError";
    } catch (const ss::ScenarioIoError& error) {
        EXPECT_EQ(error.path(), "$.scenarios[1].budgets");
    }
    // A catalog document rejects keys beside "scenarios"/"batches".
    try {
        (void)ss::specs_from_json(JsonValue::parse(
            "{\"scenarios\": [{\"name\": \"a\"}], \"extra\": 1}"));
        FAIL() << "expected ScenarioIoError";
    } catch (const ss::ScenarioIoError& error) {
        EXPECT_EQ(error.path(), "$.extra");
    }
}

TEST(ScenarioIo, CatalogBatchesRoundTripAndResolve) {
    // User-defined $.batches[]: parse, register, expand, and re-emit.
    const auto document = ss::document_from_json(JsonValue::parse(
        "{\"scenarios\": [{\"name\": \"a\"}, {\"name\": \"b\"}],"
        " \"batches\": [{\"name\": \"both\","
        " \"description\": \"a then b\","
        " \"scenarios\": [\"a\", \"b\"]}]}"));
    ASSERT_EQ(document.scenarios.size(), 2u);
    ASSERT_EQ(document.batches.size(), 1u);
    EXPECT_EQ(document.batches[0].name, "both");
    EXPECT_EQ(document.batches[0].description, "a then b");

    ss::ScenarioRegistry registry;
    registry.load_text(
        "{\"scenarios\": [{\"name\": \"a\"}, {\"name\": \"b\"}],"
        " \"batches\": [{\"name\": \"both\", \"scenarios\": [\"a\", \"b\"]},"
        // A loaded batch may also reference scenarios already registered.
        " {\"name\": \"mixed\", \"scenarios\": [\"a\", \"figure1\"]}]}");
    ASSERT_TRUE(registry.contains_batch("both"));
    ASSERT_TRUE(registry.contains_batch("mixed"));
    const auto expanded = registry.expand("mixed");
    ASSERT_EQ(expanded.size(), 2u);
    EXPECT_EQ(expanded[0].name, "a");
    EXPECT_EQ(expanded[1].name, "figure1");

    // catalog_to_json re-emits batches alongside scenarios; the document
    // round-trips through parse -> document_from_json.
    const JsonValue catalog = ss::catalog_to_json(
        document.scenarios, {registry.get_batch("both")});
    const auto again =
        ss::document_from_json(JsonValue::parse(catalog.dump(2)));
    ASSERT_EQ(again.batches.size(), 1u);
    EXPECT_EQ(again.batches[0].scenarios, document.batches[0].scenarios);

    // Malformed batch entries name their path.
    try {
        (void)ss::document_from_json(JsonValue::parse(
            "{\"scenarios\": [{\"name\": \"a\"}],"
            " \"batches\": [{\"name\": \"x\", \"scenarios\": []}]}"));
        FAIL() << "expected ScenarioIoError";
    } catch (const ss::ScenarioIoError& error) {
        EXPECT_EQ(error.path(), "$.batches[0].scenarios");
    }
}

TEST(ScenarioIo, BatchWithUnknownMemberLeavesRegistryUntouched) {
    // Atomicity: a batch referencing a scenario that is neither in the
    // document nor already registered must reject the whole load —
    // scenarios listed before it are NOT half-adopted.
    ss::ScenarioRegistry registry;
    const auto names_before = registry.names();
    const auto batches_before = registry.batches().size();
    EXPECT_THROW(
        (void)registry.load_text(
            "{\"scenarios\": [{\"name\": \"fresh\"}],"
            " \"batches\": [{\"name\": \"broken\","
            " \"scenarios\": [\"fresh\", \"no-such-scenario\"]}]}"),
        ss::ScenarioIoError);
    EXPECT_EQ(registry.names(), names_before);
    EXPECT_FALSE(registry.contains("fresh"));
    EXPECT_EQ(registry.batches().size(), batches_before);
}

TEST(ScenarioIo, EngineOwnedSimFieldsAreRejectedOnBothSides) {
    ss::ScenarioSpec spec;
    spec.name = "x";
    spec.sim.timeout_enabled = true;
    EXPECT_THROW((void)ss::to_json(spec), ss::ScenarioIoError);
    // Seeds past 2^53 cannot survive the double trip — to_json must
    // refuse them up front (an exportable spec is always loadable).
    ss::ScenarioSpec big_seed;
    big_seed.name = "x";
    big_seed.sim.seed = (std::uint64_t{1} << 53) + 2;
    EXPECT_THROW((void)ss::to_json(big_seed), ss::ScenarioIoError);
    big_seed.sim.seed = std::uint64_t{1} << 53;
    EXPECT_NO_THROW((void)ss::to_json(big_seed));
    try {
        (void)ss::spec_from_json(JsonValue::parse(
            "{\"name\": \"x\", \"sim\": {\"timeout_enabled\": true}}"));
        FAIL() << "expected ScenarioIoError";
    } catch (const ss::ScenarioIoError& error) {
        EXPECT_EQ(error.path(), "$.sim.timeout_enabled");
    }
}

TEST(ScenarioIo, RegistryLoadsTextFilesAndMerges) {
    ss::ScenarioRegistry registry;
    const std::size_t presets = registry.size();
    const std::size_t added = registry.load_text(
        "{\"scenarios\": [{\"name\": \"from-text\", \"budgets\": [9]},"
        " {\"name\": \"figure1\", \"budgets\": [7]}]}");
    EXPECT_EQ(added, 2u);
    EXPECT_EQ(registry.size(), presets + 1);  // figure1 replaced in place
    EXPECT_EQ(registry.get("from-text").budgets, std::vector<long>{9});
    EXPECT_EQ(registry.get("figure1").budgets, std::vector<long>{7});

    // A malformed document leaves the registry unchanged.
    ss::ScenarioRegistry untouched;
    const auto names_before = untouched.names();
    EXPECT_THROW(
        (void)untouched.load_text(
            "{\"scenarios\": [{\"name\": \"ok\"}, {\"name\": \"bad\", "
            "\"budgets\": []}]}"),
        ss::ScenarioIoError);
    EXPECT_EQ(untouched.names(), names_before);

    // merge() adopts scenarios and batches (same-name replaces).
    ss::ScenarioRegistry target;
    target.merge(registry);
    EXPECT_TRUE(target.contains("from-text"));
    EXPECT_EQ(target.get("figure1").budgets, std::vector<long>{7});
    EXPECT_TRUE(target.contains_batch("paper-suite"));

    // load_file round: write, load, compare.
    const std::string path = "scenario_io_test_tmp.json";
    {
        std::ofstream out(path);
        out << ss::to_json(registry.get("from-text")).dump(2);
    }
    ss::ScenarioRegistry from_file;
    EXPECT_EQ(from_file.load_file(path), 1u);
    EXPECT_TRUE(from_file.get("from-text") == registry.get("from-text"));
    std::remove(path.c_str());

    EXPECT_THROW((void)from_file.load_file("definitely_not_here.json"),
                 ss::ScenarioIoError);
}

TEST(ScenarioBuilder, BuildsValidatedSpecs) {
    const ss::ScenarioSpec spec = ss::ScenarioBuilder("built")
                                      .description("builder walk")
                                      .testbench(ss::Testbench::kFigure1)
                                      .budgets({12, 18})
                                      .replications(2)
                                      .sizing_iterations(3)
                                      .horizon(600.0, 60.0)
                                      .seed(7)
                                      .build();
    EXPECT_EQ(spec.name, "built");
    EXPECT_EQ(spec.budgets.size(), 2u);
    EXPECT_EQ(spec.sim.warmup, 60.0);
    EXPECT_EQ(spec.sim.seed, 7u);
    // Default warmup is 10% of the horizon.
    EXPECT_EQ(ss::ScenarioBuilder("w").horizon(500.0).build().sim.warmup,
              50.0);
    // The first variant() replaces the default entry; later ones append.
    const auto sweep = ss::ScenarioBuilder("sweep")
                           .variant("a")
                           .variant("b")
                           .build();
    ASSERT_EQ(sweep.variants.size(), 2u);
    EXPECT_EQ(sweep.variants[0].label, "a");
    // build() validates: a malformed chain throws, naming the contract.
    EXPECT_THROW((void)ss::ScenarioBuilder("bad").budgets({}).build(),
                 socbuf::util::ContractViolation);
    EXPECT_THROW((void)ss::ScenarioBuilder("bad").replications(0).build(),
                 socbuf::util::ContractViolation);
}

TEST(ScenarioIo, NamesRoundTripThroughEnumHelpers) {
    using socbuf::core::SolverChoice;
    for (const auto solver :
         {SolverChoice::kAuto, SolverChoice::kLp,
          SolverChoice::kValueIteration, SolverChoice::kPolicyIteration}) {
        SolverChoice parsed{};
        ASSERT_TRUE(ss::solver_from_string(ss::to_string(solver), parsed));
        EXPECT_EQ(parsed, solver);
    }
    using socbuf::sim::ArbiterKind;
    for (const auto arbiter :
         {ArbiterKind::kFixedPriority, ArbiterKind::kRoundRobin,
          ArbiterKind::kLongestQueue, ArbiterKind::kWeightedRandom}) {
        ArbiterKind parsed{};
        ASSERT_TRUE(ss::arbiter_from_string(ss::to_string(arbiter), parsed));
        EXPECT_EQ(parsed, arbiter);
    }
    socbuf::core::SolverChoice solver{};
    EXPECT_FALSE(ss::solver_from_string("magic", solver));
    socbuf::sim::ArbiterKind arbiter{};
    EXPECT_FALSE(ss::arbiter_from_string("coin", arbiter));
    ss::Testbench testbench{};
    EXPECT_TRUE(ss::testbench_from_string("figure1", testbench));
    EXPECT_FALSE(ss::testbench_from_string("figure2", testbench));
}
