#include "ctmc/birth_death.hpp"
#include "ctmc/generator.hpp"
#include "ctmc/stationary.hpp"
#include "ctmc/transient.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sc = socbuf::ctmc;

namespace {

/// Two-state chain 0 <-> 1 with rates a (0->1) and b (1->0):
/// pi = (b, a) / (a+b).
sc::Generator two_state(double a, double b) {
    sc::Generator g(2);
    g.set_rate(0, 1, a);
    g.set_rate(1, 0, b);
    return g;
}

}  // namespace

TEST(Generator, DiagonalIsMaintained) {
    sc::Generator g(3);
    g.set_rate(0, 1, 2.0);
    g.add_rate(0, 2, 1.0);
    EXPECT_DOUBLE_EQ(g.rate(0, 0), -3.0);
    EXPECT_DOUBLE_EQ(g.exit_rate(0), 3.0);
    g.set_rate(0, 1, 0.5);  // overwrite adjusts the diagonal
    EXPECT_DOUBLE_EQ(g.exit_rate(0), 1.5);
    EXPECT_NO_THROW(g.validate());
}

TEST(Generator, ValidateCatchesBrokenRows) {
    sc::Generator g(2);
    g.set_rate(0, 1, 1.0);
    EXPECT_NO_THROW(g.validate());
    EXPECT_THROW(g.set_rate(0, 0, 1.0), socbuf::util::ContractViolation);
    EXPECT_THROW(g.set_rate(0, 1, -2.0), socbuf::util::ContractViolation);
}

TEST(Generator, MaxExitRate) {
    sc::Generator g = two_state(3.0, 1.0);
    EXPECT_DOUBLE_EQ(g.max_exit_rate(), 3.0);
}

TEST(Generator, UniformizedRowsAreStochastic) {
    sc::Generator g = two_state(2.0, 1.0);
    const auto p = g.uniformized(4.0);
    for (std::size_t r = 0; r < 2; ++r) {
        double row = 0.0;
        for (std::size_t c = 0; c < 2; ++c) {
            EXPECT_GE(p(r, c), 0.0);
            row += p(r, c);
        }
        EXPECT_NEAR(row, 1.0, 1e-12);
    }
    EXPECT_THROW(g.uniformized(1.0), socbuf::util::ContractViolation);
}

TEST(Stationary, TwoStateClosedForm) {
    const double a = 2.0;
    const double b = 3.0;
    sc::Generator g = two_state(a, b);
    const auto pi = sc::stationary_direct(g);
    EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
    EXPECT_NEAR(pi[1], a / (a + b), 1e-12);
    EXPECT_LT(sc::stationarity_residual(g, pi), 1e-12);
}

TEST(Stationary, DirectAndPowerAgree) {
    sc::Generator g(4);
    // A little ring with asymmetric shortcuts.
    g.set_rate(0, 1, 1.0);
    g.set_rate(1, 2, 2.0);
    g.set_rate(2, 3, 1.5);
    g.set_rate(3, 0, 0.5);
    g.set_rate(2, 0, 0.7);
    g.set_rate(1, 3, 0.2);
    const auto direct = sc::stationary_direct(g);
    const auto power = sc::stationary_power(g);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(direct[i], power[i], 1e-8);
}

TEST(Stationary, NormalizationHolds) {
    sc::Generator g = two_state(0.1, 0.9);
    const auto pi = sc::stationary_direct(g);
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
}

TEST(BirthDeath, MatchesDirectSolver) {
    const std::vector<double> births{1.0, 0.8, 0.6};
    const std::vector<double> deaths{1.5, 1.5, 1.5};
    const auto closed = sc::birth_death_stationary(births, deaths);

    sc::Generator g(4);
    for (std::size_t i = 0; i < 3; ++i) {
        g.set_rate(i, i + 1, births[i]);
        g.set_rate(i + 1, i, deaths[i]);
    }
    const auto direct = sc::stationary_direct(g);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(closed[i], direct[i], 1e-12);
}

TEST(BirthDeath, RejectsBadRates) {
    EXPECT_THROW(sc::birth_death_stationary({1.0}, {}),
                 socbuf::util::ContractViolation);
    EXPECT_THROW(sc::birth_death_stationary({1.0}, {0.0}),
                 socbuf::util::ContractViolation);
    EXPECT_THROW(sc::birth_death_stationary({-1.0}, {1.0}),
                 socbuf::util::ContractViolation);
}

class Mm1kClosedFormTest
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(Mm1kClosedFormTest, GeometricFormula) {
    const auto [lambda, mu, k] = GetParam();
    const auto pi = sc::mm1k_stationary(lambda, mu, k);
    ASSERT_EQ(pi.size(), static_cast<std::size_t>(k + 1));
    const double rho = lambda / mu;
    // pi_n = rho^n (1-rho) / (1-rho^{K+1}) for rho != 1.
    double norm = 0.0;
    for (int n = 0; n <= k; ++n) norm += std::pow(rho, n);
    for (int n = 0; n <= k; ++n)
        EXPECT_NEAR(pi[n], std::pow(rho, n) / norm, 1e-10)
            << "n=" << n << " rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(
    Loads, Mm1kClosedFormTest,
    ::testing::Values(std::make_tuple(0.5, 1.0, 4),
                      std::make_tuple(0.9, 1.0, 8),
                      std::make_tuple(2.0, 1.0, 3),
                      std::make_tuple(1.0, 2.0, 16),
                      std::make_tuple(3.3, 1.7, 6)));

TEST(Mm1k, CriticalLoadIsUniform) {
    const auto pi = sc::mm1k_stationary(1.0, 1.0, 5);
    for (std::size_t i = 0; i <= 5; ++i) EXPECT_NEAR(pi[i], 1.0 / 6.0, 1e-12);
}

TEST(Transient, AtTimeZeroReturnsInitial) {
    sc::Generator g = two_state(1.0, 2.0);
    const socbuf::linalg::Vector init{1.0, 0.0};
    EXPECT_EQ(sc::transient_distribution(g, init, 0.0), init);
}

TEST(Transient, TwoStateClosedForm) {
    // pi_1(t) = a/(a+b) * (1 - exp(-(a+b) t)) starting from state 0.
    const double a = 1.3;
    const double b = 0.7;
    sc::Generator g = two_state(a, b);
    const socbuf::linalg::Vector init{1.0, 0.0};
    for (const double t : {0.1, 0.5, 1.0, 3.0}) {
        const auto pi = sc::transient_distribution(g, init, t);
        const double expected =
            a / (a + b) * (1.0 - std::exp(-(a + b) * t));
        EXPECT_NEAR(pi[1], expected, 1e-9) << "t=" << t;
        EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
    }
}

TEST(Transient, LongHorizonApproachesStationary) {
    sc::Generator g(3);
    g.set_rate(0, 1, 1.0);
    g.set_rate(1, 2, 0.5);
    g.set_rate(2, 0, 0.8);
    g.set_rate(1, 0, 0.3);
    const auto stationary = sc::stationary_direct(g);
    const socbuf::linalg::Vector init{1.0, 0.0, 0.0};
    const auto pi = sc::transient_distribution(g, init, 200.0);
    for (std::size_t s = 0; s < 3; ++s)
        EXPECT_NEAR(pi[s], stationary[s], 1e-8);
}

TEST(Transient, AverageCostConvergesToStationaryAverage) {
    sc::Generator g = two_state(2.0, 1.0);
    const socbuf::linalg::Vector cost{0.0, 3.0};
    const auto stationary = sc::stationary_direct(g);
    const double limit = stationary[1] * 3.0;
    const socbuf::linalg::Vector init{1.0, 0.0};
    const double avg_short = sc::transient_average_cost(g, init, cost, 0.5);
    const double avg_long =
        sc::transient_average_cost(g, init, cost, 5000.0);
    // Starting empty, the short-horizon average is below the long-run one;
    // the long-horizon one converges at the O(bias/t) rate.
    EXPECT_LT(avg_short, limit);
    EXPECT_NEAR(avg_long, limit, 5e-4);
}

TEST(Transient, RejectsBadInputs) {
    sc::Generator g = two_state(1.0, 1.0);
    EXPECT_THROW(
        (void)sc::transient_distribution(g, {0.5, 0.2}, 1.0),  // sums to 0.7
        socbuf::util::ContractViolation);
    EXPECT_THROW(
        (void)sc::transient_average_cost(g, {1.0, 0.0}, {1.0}, 1.0),
        socbuf::util::ContractViolation);
    EXPECT_THROW(
        (void)sc::transient_average_cost(g, {1.0, 0.0}, {1.0, 1.0}, 0.0),
        socbuf::util::ContractViolation);
}
