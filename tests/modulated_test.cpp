#include "arch/presets.hpp"
#include "core/allocation.hpp"
#include "core/engine.hpp"
#include "core/modulated_model.hpp"
#include "core/subsystem_model.hpp"
#include "ctmdp/lp_solver.hpp"
#include "ctmdp/occupation.hpp"
#include "split/splitter.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

namespace sc = socbuf::core;
namespace sa = socbuf::arch;
namespace sp = socbuf::split;

namespace {

const sa::TestSystem& figure1() {
    static const auto sys = sa::figure1_system();
    return sys;
}

const sp::SplitResult& figure1_split() {
    static const auto split = sp::split_architecture(figure1());
    return split;
}

/// Bus b of Figure 1 carries one bursty flow (processor 2's ON/OFF stream
/// to processor 5) — the canonical modulated test subject.
const sp::Subsystem& bus_b() {
    for (const auto& sub : figure1_split().subsystems)
        if (sub.bus_name == "b") return sub;
    throw std::logic_error("bus b missing");
}

}  // namespace

TEST(SplitBurstInfo, BurstParametersSurviveTheSplit) {
    const auto& sub = bus_b();
    std::size_t bursty = 0;
    for (const auto& f : sub.flows) {
        if (f.bursty()) {
            ++bursty;
            EXPECT_GT(f.burst_rate, 0.0);
            EXPECT_GT(f.on_time, 0.0);
            EXPECT_GT(f.off_time, 0.0);
            EXPECT_LE(f.burst_rate, f.arrival_rate + 1e-12);
        }
    }
    EXPECT_GE(bursty, 1u) << "processor 2's flow is bursty by construction";
}

TEST(ModulatedModel, StateSpaceDoublesPerBurstyFlow) {
    const auto& sub = bus_b();
    std::vector<long> caps(sub.flows.size(), 2);
    std::vector<double> rates;
    for (const auto& f : sub.flows) rates.push_back(f.arrival_rate);

    const sc::SubsystemCtmdp poisson(sub, caps, rates);
    const sc::ModulatedSubsystemCtmdp modulated(sub, caps, rates);
    ASSERT_GE(modulated.modulated_flow_count(), 1u);
    EXPECT_EQ(modulated.model().state_count(),
              poisson.model().state_count()
                  << modulated.modulated_flow_count());
}

TEST(ModulatedModel, PhaseAndOccupancyDecodeRoundTrip) {
    const auto& sub = bus_b();
    std::vector<long> caps(sub.flows.size(), 2);
    std::vector<double> rates;
    for (const auto& f : sub.flows) rates.push_back(f.arrival_rate);
    const sc::ModulatedSubsystemCtmdp m(sub, caps, rates);
    // Every state must be uniquely identified by (occupancies, phases).
    std::set<std::vector<long>> seen;
    for (std::size_t s = 0; s < m.model().state_count(); ++s) {
        std::vector<long> key;
        for (std::size_t f = 0; f < m.flow_count(); ++f) {
            key.push_back(m.occupancy(s, f));
            key.push_back(m.phase_on(s, f) ? 1 : 0);
        }
        EXPECT_TRUE(seen.insert(key).second) << "duplicate state key";
    }
}

TEST(ModulatedModel, SmoothFlowsReduceToThePoissonModel) {
    // A subsystem with no bursty flows: the modulated model must be
    // identical in size and produce the same LP gain.
    const sp::Subsystem* bus_a = nullptr;
    for (const auto& sub : figure1_split().subsystems)
        if (sub.bus_name == "a") bus_a = &sub;
    ASSERT_NE(bus_a, nullptr);
    std::vector<long> caps(bus_a->flows.size(), 3);
    std::vector<double> rates;
    for (const auto& f : bus_a->flows) rates.push_back(f.arrival_rate);

    const sc::SubsystemCtmdp poisson(*bus_a, caps, rates);
    const sc::ModulatedSubsystemCtmdp modulated(*bus_a, caps, rates);
    EXPECT_EQ(modulated.modulated_flow_count(), 0u);
    EXPECT_EQ(modulated.model().state_count(),
              poisson.model().state_count());
    const auto lp_p = socbuf::ctmdp::solve_average_cost_lp(poisson.model());
    const auto lp_m =
        socbuf::ctmdp::solve_average_cost_lp(modulated.model());
    ASSERT_EQ(lp_p.status, socbuf::lp::SolveStatus::kOptimal);
    ASSERT_EQ(lp_m.status, socbuf::lp::SolveStatus::kOptimal);
    EXPECT_NEAR(lp_p.average_cost, lp_m.average_cost, 1e-8);
}

TEST(ModulatedModel, PredictsMoreLossThanPoissonForBurstyTraffic) {
    // The whole point: at equal long-run rates, the burst-aware model
    // knows small buffers overflow during ON phases; the Poisson model
    // underestimates that loss.
    const auto& sub = bus_b();
    std::vector<long> caps(sub.flows.size(), 2);
    std::vector<double> rates;
    for (const auto& f : sub.flows) rates.push_back(f.arrival_rate);
    const sc::SubsystemCtmdp poisson(sub, caps, rates);
    const sc::ModulatedSubsystemCtmdp modulated(sub, caps, rates);
    const auto lp_p = socbuf::ctmdp::solve_average_cost_lp(poisson.model());
    const auto lp_m =
        socbuf::ctmdp::solve_average_cost_lp(modulated.model());
    ASSERT_EQ(lp_p.status, socbuf::lp::SolveStatus::kOptimal);
    ASSERT_EQ(lp_m.status, socbuf::lp::SolveStatus::kOptimal);
    EXPECT_GT(lp_m.average_cost, lp_p.average_cost * 1.05);
}

TEST(ModulatedModel, MarginalsAndSharesAreDistributions) {
    const auto& sub = bus_b();
    std::vector<long> caps(sub.flows.size(), 2);
    std::vector<double> rates;
    for (const auto& f : sub.flows) rates.push_back(f.arrival_rate);
    const sc::ModulatedSubsystemCtmdp m(sub, caps, rates);
    const auto lp = socbuf::ctmdp::solve_average_cost_lp(m.model());
    ASSERT_EQ(lp.status, socbuf::lp::SolveStatus::kOptimal);
    socbuf::linalg::Vector pi(lp.state_probability.begin(),
                              lp.state_probability.end());
    for (std::size_t f = 0; f < m.flow_count(); ++f) {
        const auto marg = m.flow_marginal(pi, f);
        double total = 0.0;
        for (double p : marg) {
            EXPECT_GE(p, -1e-9);
            total += p;
        }
        EXPECT_NEAR(total, 1.0, 1e-6);
    }
    const auto shares = m.service_shares(lp.occupation);
    double share_total = 0.0;
    for (double s : shares) share_total += s;
    EXPECT_NEAR(share_total, 1.0, 1e-6);
}

TEST(ModulatedModel, BuilderClampsAndValidates) {
    const auto& split = figure1_split();
    const auto alloc = sc::uniform_allocation(split, 36);
    const auto models = sc::build_modulated_models(split, alloc, 2);
    EXPECT_EQ(models.size(), split.subsystems.size());
    for (const auto& m : models)
        for (const long c : m.caps()) EXPECT_LE(c, 2);
    EXPECT_THROW(sc::build_modulated_models(split, {1, 2}, 2),
                 socbuf::util::ContractViolation);
}

TEST(Engine, ModulatedModeRunsEndToEnd) {
    sc::SizingOptions opts;
    opts.total_budget = 36;
    opts.iterations = 2;
    opts.model_cap = 2;  // modulated state spaces grow 2x per bursty flow
    opts.use_modulated_models = true;
    opts.sim.horizon = 1200.0;
    opts.sim.warmup = 120.0;
    const auto report = sc::BufferSizingEngine(opts).run(figure1());
    EXPECT_EQ(sc::allocation_total(report.best), 36);
    std::vector<double> weights(figure1().flows.size(), 1.0);
    EXPECT_LE(report.after.weighted_loss(weights),
              report.before.weighted_loss(weights) + 1e-9);
}
