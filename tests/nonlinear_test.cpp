#include "arch/presets.hpp"
#include "nonlinear/coupled_model.hpp"
#include "nonlinear/newton.hpp"
#include "split/splitter.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sn = socbuf::nonlinear;
namespace sa = socbuf::arch;
namespace sp = socbuf::split;

namespace {

sn::CoupledBusModel figure1_model(long cap = 2) {
    static const auto sys = sa::figure1_system();
    static const auto split = sp::split_architecture(sys);
    sn::CoupledModelOptions opts;
    opts.site_cap = cap;
    return sn::CoupledBusModel(sys, split, opts);
}

}  // namespace

TEST(CoupledModel, DimensionsMatchStateSpaces) {
    const auto model = figure1_model();
    EXPECT_EQ(model.bus_count(), 4u);
    std::size_t total = 0;
    for (std::size_t b = 0; b < model.bus_count(); ++b)
        total += model.bus_state_count(b);
    EXPECT_EQ(model.unknown_count(), total);
}

TEST(CoupledModel, BridgesCreateQuadraticTerms) {
    // The whole point of the paper's Section 2: the monolithic model of a
    // bridged architecture has bilinear (quadratic) terms.
    const auto model = figure1_model();
    EXPECT_GT(model.bilinear_term_count(), 0u);
}

TEST(CoupledModel, UnbridgedSystemIsLinear) {
    sa::TestSystem sys;
    const auto bus = sys.architecture.add_bus("solo", 2.0);
    const auto p = sys.architecture.add_processor("p", bus);
    const auto q = sys.architecture.add_processor("q", bus);
    sys.flows.push_back({p, q, 1.0, 1.0, 0.0, 0.0});
    const auto split = sp::split_architecture(sys);
    const sn::CoupledBusModel model(sys, split);
    EXPECT_EQ(model.bilinear_term_count(), 0u);
}

TEST(CoupledModel, ResidualVanishesOnlyAtSolutions) {
    const auto model = figure1_model();
    const auto x0 = model.initial_uniform();
    const auto r = model.residual(x0);
    ASSERT_EQ(r.size(), model.unknown_count());
    // Uniform distributions satisfy normalization but not balance.
    EXPECT_GT(socbuf::linalg::norm_inf(r), 1e-4);
}

TEST(CoupledModel, FixedPointSolvesTheSystem) {
    // The split-style iteration (each bus solved as a *linear* system,
    // coupling updated between rounds) converges where monolithic Newton
    // struggles — the computational content of the paper's contribution.
    const auto model = figure1_model();
    const auto fp = model.solve_fixed_point();
    EXPECT_TRUE(fp.converged);
    EXPECT_TRUE(fp.solution.feasible);
    EXPECT_GT(fp.solution.total_loss_rate, 0.0);
    for (const auto& pi : fp.solution.pi) {
        double total = 0.0;
        for (double p : pi) {
            EXPECT_GE(p, -1e-9);
            total += p;
        }
        EXPECT_NEAR(total, 1.0, 1e-6);
    }
}

TEST(CoupledModel, FixedPointIsAResidualZero) {
    const auto model = figure1_model();
    const auto fp = model.solve_fixed_point(1000, 1e-12);
    ASSERT_TRUE(fp.converged);
    // Re-encode the fixed point and evaluate the monolithic residual: the
    // split solution satisfies the quadratic system.
    socbuf::linalg::Vector x;
    for (const auto& pi : fp.solution.pi)
        x.insert(x.end(), pi.begin(), pi.end());
    const auto r = model.residual(x);
    EXPECT_LT(socbuf::linalg::norm_inf(r), 1e-6);
}

TEST(Newton, FromFixedPointStartConvergesInstantly) {
    const auto model = figure1_model();
    const auto fp = model.solve_fixed_point(1000, 1e-12);
    ASSERT_TRUE(fp.converged);
    socbuf::linalg::Vector x;
    for (const auto& pi : fp.solution.pi)
        x.insert(x.end(), pi.begin(), pi.end());
    const auto nr = sn::solve_newton(model, x);
    EXPECT_EQ(nr.outcome, sn::NewtonOutcome::kConverged);
    EXPECT_LE(nr.iterations, 3u);
}

TEST(Newton, BothRoutesSolveAndAgree) {
    // Honest reproduction note (see EXPERIMENTS.md): at Figure-1 scale a
    // modern Newton *does* solve the monolithic quadratic system — we
    // could not reproduce the paper's outright solver failure. The split's
    // structural advantages (only linear solves, no Jacobian assembly,
    // feasibility by construction) are benchmarked in
    // bench_nonlinear_vs_split; here we pin that both routes reach the
    // same solution.
    const auto model = figure1_model();
    socbuf::rng::RandomEngine eng(17);
    const auto nr = sn::solve_newton(model, model.initial_random(eng));
    ASSERT_TRUE(nr.usable());
    const auto fp = model.solve_fixed_point(1000, 1e-12);
    ASSERT_TRUE(fp.converged);
    const auto newton_decoded = model.decode(nr.x);
    EXPECT_NEAR(newton_decoded.total_loss_rate,
                fp.solution.total_loss_rate,
                0.02 * std::max(0.1, fp.solution.total_loss_rate));
}

TEST(Newton, FullStepModeAlsoReported) {
    // Both globalized and plain-Newton modes are exposed; the bench
    // compares their robustness explicitly.
    const auto model = figure1_model();
    socbuf::rng::RandomEngine eng(19);
    sn::NewtonOptions plain;
    plain.line_search = false;
    const auto nr = sn::solve_newton(model, model.initial_random(eng), plain);
    // Either it converges or it reports a diagnosable failure; it must
    // never return kConverged with an infeasible point undetected.
    if (nr.outcome == sn::NewtonOutcome::kConverged) {
        const auto d = model.decode(nr.x);
        EXPECT_TRUE(d.feasible);
    }
}

TEST(Newton, ReportsOutcomeStrings) {
    EXPECT_STREQ(sn::to_string(sn::NewtonOutcome::kConverged), "converged");
    EXPECT_STREQ(sn::to_string(sn::NewtonOutcome::kDiverged), "diverged");
    EXPECT_STREQ(sn::to_string(sn::NewtonOutcome::kLineSearchFailed),
                 "line-search-failed");
}

TEST(Newton, DimensionMismatchRejected) {
    const auto model = figure1_model();
    EXPECT_THROW((void)sn::solve_newton(model, socbuf::linalg::Vector(3, 0.1)),
                 socbuf::util::ContractViolation);
}

TEST(CoupledModel, LossDecreasesWithLargerCaps) {
    const auto small = figure1_model(1).solve_fixed_point();
    const auto large = figure1_model(4).solve_fixed_point();
    ASSERT_TRUE(small.converged);
    ASSERT_TRUE(large.converged);
    EXPECT_GT(small.solution.total_loss_rate,
              large.solution.total_loss_rate);
}
