// Fixture: linted as src/split/pointer_key_bad.cpp — an ordered
// container keyed by a pointer iterates in address order, which changes
// from run to run.
#include <map>

struct Site;

std::map<Site*, int> ranks;
