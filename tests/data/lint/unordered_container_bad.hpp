#pragma once
// Fixture: linted as src/core/unordered_container_bad.hpp — an unordered
// member in determinism-scoped code needs an argued justification.

#include <string>
#include <unordered_map>

struct Probe {
    std::unordered_map<std::string, int> table;
};
