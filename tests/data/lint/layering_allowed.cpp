// Fixture: the same upward include as layering_bad.cpp, silenced by an
// argued suppression on the line above the offending include.
// socbuf-lint: allow(layering) — fixture: migration shim, tracked for removal.
#include "scenario/scenario.hpp"

void probe();
