// Fixture: linted as src/arch/layering_bad.cpp — arch (rank 1) reaching
// up into scenario (rank 6) must fire the layering rule.
#include "scenario/scenario.hpp"

void probe();
