// Fixture: linted as src/core/raw_thread_bad.cpp — raw threading
// primitives outside src/exec/ (and the solve cache) undermine the
// deterministic claim-and-fold contract.
#include <mutex>
#include <thread>

std::mutex gate;

void spin() {
    std::thread worker([] {});
    worker.join();
}
