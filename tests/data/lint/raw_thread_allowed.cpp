// Fixture: the same primitives as raw_thread_bad.cpp, each carrying an
// argued suppression.
#include <mutex>
#include <thread>

// socbuf-lint: allow(raw-thread) — fixture: guards a debug-only counter.
std::mutex gate;

void spin() {
    // socbuf-lint: allow(raw-thread) — fixture: joined before any result is read.
    std::thread worker([] {});
    worker.join();
}
