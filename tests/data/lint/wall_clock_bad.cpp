// Fixture: linted as src/scenario/wall_clock_bad.cpp — a wall-clock read
// outside bench/ makes results depend on when the code runs.
#include <chrono>

double stamp() {
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}
