// Fixture: linted as src/util/suppression_unknown_rule.cpp — naming a
// rule the analyzer does not know is a diagnostic (typos cannot silently
// disable checking).
// socbuf-lint: allow(made-up-rule) — justified, but the rule id is a typo.
int probe();
