// Fixture: an allow-file naming an unknown rule is an unsuppressible
// diagnostic that suggests the nearest valid rule id.
// socbuf-lint: allow-file(wall-clok) — fixture: typo in the rule id.
#include <chrono>

namespace socbuf::core {

inline double stamp() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace socbuf::core
