// Fixture: the same fold with per-chunk index-addressed slots,
// reduced in index order on the submitting thread after the barrier.
#include <cstddef>
#include <vector>

namespace socbuf::ctmc {

double fold_losses(exec::Executor& executor, const double* losses,
                   std::size_t n) {
    const std::size_t chunks = (n + 63) / 64;
    std::vector<double> partial(chunks, 0.0);
    executor.for_ranges(
        n,
        [&](std::size_t lo, std::size_t hi) {
            double local = 0.0;
            for (std::size_t s = lo; s < hi; ++s) local += losses[s];
            partial[lo / 64] = local;
        },
        64);
    double total = 0.0;
    for (std::size_t c = 0; c < chunks; ++c) total += partial[c];
    return total;
}

}  // namespace socbuf::ctmc
