// Fixture: analyzed as src/core/callgraph_reach.cpp — reachability
// flows from the entry call through a named lambda into plain
// functions: a static two frames down the chain is still worker
// context.
#include <cstddef>

namespace socbuf::core {

double leaf(double x) {
    static double memo = 0.0;
    memo = memo + x;
    return memo;
}

double middle(double x) { return leaf(x) + 1.0; }

void drive(exec::Executor& executor, std::size_t n, double* out) {
    const auto solve_one = [&](std::size_t i) { out[i] = middle(i); };
    executor.map(n, solve_one);
}

}  // namespace socbuf::core
