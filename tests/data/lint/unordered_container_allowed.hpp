#pragma once
// Fixture: the same unordered member as unordered_container_bad.hpp,
// justified inline (end-of-line form of the suppression).

#include <string>
#include <unordered_map>

struct Probe {
    // socbuf-lint: allow(unordered-container) — lookup-only; never iterated.
    std::unordered_map<std::string, int> table;
};
