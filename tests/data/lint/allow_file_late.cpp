// Fixture: an allow-file buried past the first 10 lines does not
// apply; it is flagged and the finding still fires.
#include <chrono>

namespace socbuf::core {

inline int padding_one() { return 1; }
inline int padding_two() { return 2; }
inline int padding_three() { return 3; }

// socbuf-lint: allow-file(wall-clock) — fixture: declared too late.
inline double stamp() {
    const auto tick = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(tick.time_since_epoch()).count();
}

}  // namespace socbuf::core
