// Fixture: analyzed as src/ctmc/fold_order_bad.cpp — accumulating
// into a shared total from worker bodies folds in schedule order;
// floating-point addition does not commute bit-for-bit.
#include <cstddef>

namespace socbuf::ctmc {

double fold_losses(exec::Executor& executor, const double* losses,
                   std::size_t n) {
    double total = 0.0;
    executor.for_ranges(
        n,
        [&](std::size_t lo, std::size_t hi) {
            for (std::size_t s = lo; s < hi; ++s) total += losses[s];
        },
        64);
    return total;
}

}  // namespace socbuf::ctmc
