// Fixture: analyzed as src/scenario/nonreentrant_call_bad.cpp — strtok
// keeps a hidden cursor between calls; any worker-context call races
// with every other parse in flight.
#include <cstddef>
#include <cstring>

namespace socbuf::scenario {

int count_fields(char* text) {
    int count = 0;
    for (char* tok = std::strtok(text, ";"); tok != nullptr;
         tok = std::strtok(nullptr, ";"))
        ++count;
    return count;
}

void parse_all(exec::TaskGraph& graph, char** rows, int* out,
               std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
        graph.submit([&, i] { out[i] = count_fields(rows[i]); });
}

}  // namespace socbuf::scenario
