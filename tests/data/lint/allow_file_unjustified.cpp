// Fixture: an allow-file with no justification after the rule list is
// itself a diagnostic, and the opt-out does not apply.
// socbuf-lint: allow-file(wall-clock)
#include <chrono>

namespace socbuf::core {

inline double stamp() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace socbuf::core
