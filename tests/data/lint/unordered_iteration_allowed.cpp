// Fixture: the same iterations as unordered_iteration_bad.cpp, each
// carrying an argued suppression (the fold result is order-independent).
#include <string>
#include <unordered_map>

// socbuf-lint: allow(unordered-container) — fixture isolates the iteration rule.
std::unordered_map<std::string, double> totals;

double fold() {
    double sum = 0.0;
    // socbuf-lint: allow(unordered-iteration) — sum is commutative; order cannot leak.
    for (const auto& [key, value] : totals) sum += value;
    return sum;
}

// socbuf-lint: allow(unordered-iteration) — fixture: begin() feeds no fold here.
double first() { return totals.begin()->second; }
