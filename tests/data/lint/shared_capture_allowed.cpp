// Fixture: the same gather made safe — an index-addressed slot per
// task, an atomic progress counter, and one argued suppression.
#include <atomic>
#include <cstddef>
#include <vector>

namespace socbuf::core {

void gather(exec::Executor& executor, std::size_t n) {
    std::vector<double> slots(n, 0.0);
    std::atomic<std::size_t> done{0};
    double scratch = 0.0;
    executor.map(n, [&](std::size_t i) {
        slots[i] = static_cast<double>(i);
        done.fetch_add(1);
        // socbuf-lint: allow(shared-capture) — fixture: n == 1 on this path.
        scratch = slots[i];
    });
}

}  // namespace socbuf::core
