// Fixture: the same clock read as wall_clock_bad.cpp, justified as a
// timing diagnostic (the batch runner's first_eval_latency_s pattern).
#include <chrono>

double stamp() {
    // socbuf-lint: allow(wall-clock) — timing diagnostic only; never folded into reports.
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch()).count();
}
