#pragma once
// Fixture: the fixed twin of pragma_once_bad.hpp — the guard is the fix;
// no suppression needed.
struct Probe {
    int value = 0;
};
