// Fixture: analyzed as src/core/allow_file_ok.cpp — a file-level
// opt-out within the first 10 lines suppresses its rule everywhere in
// the file.
// socbuf-lint: allow-file(wall-clock) — fixture: progress logging only,
// never folded into results.
#include <chrono>

namespace socbuf::core {

inline double stamp() {
    const auto tick = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(tick.time_since_epoch()).count();
}

}  // namespace socbuf::core
