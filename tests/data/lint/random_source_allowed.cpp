// Fixture: the same ambient randomness as random_source_bad.cpp, each
// use carrying an argued suppression.
#include <cstdlib>
#include <random>

// socbuf-lint: allow(random-source) — fixture: value is discarded, never folded.
int jitter() { return std::rand(); }

// socbuf-lint: allow(random-source) — fixture: entropy probe for a diagnostic only.
unsigned seed_entropy() { return std::random_device{}(); }
