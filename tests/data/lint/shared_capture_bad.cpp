// Fixture: analyzed as src/core/shared_capture_bad.cpp — a
// by-reference capture mutated inside a worker body is a data race;
// results must flow through index-addressed slots.
#include <cstddef>
#include <vector>

namespace socbuf::core {

void gather(exec::Executor& executor, std::size_t n) {
    std::vector<double> hits;
    std::size_t last_index = 0;
    executor.map(n, [&](std::size_t i) {
        hits.push_back(static_cast<double>(i));
        last_index = i;
    });
}

}  // namespace socbuf::core
