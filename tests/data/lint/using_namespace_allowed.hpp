#pragma once
// Fixture: the same directive as using_namespace_bad.hpp, suppressed
// with a justification.

#include <string>

// socbuf-lint: allow(using-namespace-header) — fixture: header is test-only.
using namespace std;
