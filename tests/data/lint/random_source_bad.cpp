// Fixture: linted as src/sim/random_source_bad.cpp — ambient randomness
// (rand, std::random_device) bypasses the seeded rng layer.
#include <cstdlib>
#include <random>

int jitter() { return std::rand(); }

unsigned seed_entropy() { return std::random_device{}(); }
