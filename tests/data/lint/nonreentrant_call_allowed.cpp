// Fixture: the same strtok loop with argued suppressions — here the
// caller serializes all parses behind the batch lock.
#include <cstddef>
#include <cstring>

namespace socbuf::scenario {

int count_fields(char* text) {
    int count = 0;
    // socbuf-lint: allow(nonreentrant-call) — fixture: caller holds the batch lock.
    for (char* tok = std::strtok(text, ";"); tok != nullptr;
         // socbuf-lint: allow(nonreentrant-call) — fixture: caller holds the batch lock.
         tok = std::strtok(nullptr, ";"))
        ++count;
    return count;
}

void parse_all(exec::TaskGraph& graph, char** rows, int* out,
               std::size_t n) {
    for (std::size_t i = 0; i < n; ++i)
        graph.submit([&, i] { out[i] = count_fields(rows[i]); });
}

}  // namespace socbuf::scenario
