#pragma once
// Fixture: linted as src/util/using_namespace_bad.hpp — using namespace
// at header scope leaks into every includer.

#include <string>

using namespace std;
