// Fixture: analyzed as src/core/static_mutable_bad.cpp — mutable
// shared state reachable from a sanctioned fan-out entry point races
// across workers (and the winner's value leaks into the report).
#include <cstddef>

namespace socbuf::core {

long g_solve_count = 0;

double score_once(double x) {
    static double last_score = 0.0;
    last_score = x;
    ++g_solve_count;
    return last_score;
}

void score_all(exec::Executor& executor, std::size_t n, double* out) {
    executor.map(n, [&](std::size_t i) { out[i] = score_once(i); });
}

}  // namespace socbuf::core
