// Fixture: the same shapes as static_mutable_bad.cpp, made safe — an
// atomic counter, a const static table, and an argued suppression for
// a debug-only remnant.
#include <atomic>
#include <cstddef>

namespace socbuf::core {

std::atomic<long> g_solve_count{0};

double score_once(double x) {
    static const double kScale = 2.0;
    ++g_solve_count;
    // socbuf-lint: allow(static-mutable) — fixture: single-threaded debug path.
    static double debug_last = 0.0;
    debug_last = x;
    return x * kScale + debug_last;
}

void score_all(exec::Executor& executor, std::size_t n, double* out) {
    executor.map(n, [&](std::size_t i) { out[i] = score_once(i); });
}

}  // namespace socbuf::core
