// Fixture: linted as src/util/pragma_once_bad.hpp — a header without
// #pragma once.
struct Probe {
    int value = 0;
};
