// Fixture: linted as src/core/unordered_iteration_bad.cpp — iterating an
// unordered container (range-for and begin()) in determinism-scoped code.
// The declaration itself carries a justified suppression so this fixture
// isolates the iteration rule.
#include <string>
#include <unordered_map>

// socbuf-lint: allow(unordered-container) — fixture isolates the iteration rule.
std::unordered_map<std::string, double> totals;

double fold() {
    double sum = 0.0;
    for (const auto& [key, value] : totals) sum += value;
    return sum;
}

double first() { return totals.begin()->second; }
