// Fixture: linted as src/core/suppression_unjustified.cpp — a
// suppression with no justification text is itself a diagnostic, and it
// suppresses nothing (the rand() below still fires).
#include <cstdlib>

// socbuf-lint: allow(random-source)
int jitter() { return std::rand(); }
