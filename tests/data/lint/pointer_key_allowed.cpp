// Fixture: the same pointer-keyed map as pointer_key_bad.cpp, justified
// inline.
#include <map>

struct Site;

// socbuf-lint: allow(pointer-key) — fixture: keyed lookups only, never iterated.
std::map<Site*, int> ranks;
