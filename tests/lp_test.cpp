#include "lp/problem.hpp"
#include "lp/simplex.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <random>

namespace slp = socbuf::lp;

namespace {

/// max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  => x=4, y=0, obj=12.
slp::LinearProgram textbook_max() {
    slp::LinearProgram p;
    p.set_sense(slp::Sense::kMaximize);
    const auto x = p.add_variable(3.0, "x");
    const auto y = p.add_variable(2.0, "y");
    p.add_constraint({{{x, 1.0}, {y, 1.0}}, slp::Relation::kLessEqual, 4.0,
                      "c1"});
    p.add_constraint({{{x, 1.0}, {y, 3.0}}, slp::Relation::kLessEqual, 6.0,
                      "c2"});
    return p;
}

}  // namespace

TEST(Problem, BuilderBasics) {
    slp::LinearProgram p;
    const auto x = p.add_variable(1.0, "cost_x");
    EXPECT_EQ(p.variable_count(), 1u);
    EXPECT_EQ(p.variable_name(x), "cost_x");
    EXPECT_DOUBLE_EQ(p.objective_coeff(x), 1.0);
    p.set_objective_coeff(x, -2.0);
    EXPECT_DOUBLE_EQ(p.objective_coeff(x), -2.0);
}

TEST(Problem, DuplicateTermsAreMerged) {
    slp::LinearProgram p;
    const auto x = p.add_variable(1.0);
    const auto c =
        p.add_constraint({{{x, 1.0}, {x, 2.0}}, slp::Relation::kEqual, 3.0, ""});
    ASSERT_EQ(p.constraint(c).terms.size(), 1u);
    EXPECT_DOUBLE_EQ(p.constraint(c).terms[0].second, 3.0);
}

TEST(Problem, UnknownVariableRejected) {
    slp::LinearProgram p;
    p.add_variable(1.0);
    EXPECT_THROW(
        p.add_constraint({{{7, 1.0}}, slp::Relation::kEqual, 0.0, ""}),
        socbuf::util::ContractViolation);
}

TEST(Problem, MaxViolationMeasuresAllRelations) {
    slp::LinearProgram p;
    const auto x = p.add_variable(0.0);
    p.add_constraint({{{x, 1.0}}, slp::Relation::kLessEqual, 1.0, ""});
    p.add_constraint({{{x, 1.0}}, slp::Relation::kGreaterEqual, 0.5, ""});
    EXPECT_DOUBLE_EQ(p.max_violation({2.0}), 1.0);   // <= violated by 1
    EXPECT_DOUBLE_EQ(p.max_violation({0.0}), 0.5);   // >= violated by 0.5
    EXPECT_DOUBLE_EQ(p.max_violation({0.75}), 0.0);  // feasible
}

TEST(Simplex, SolvesTextbookMaximization) {
    const auto sol = slp::solve(textbook_max());
    ASSERT_EQ(sol.status, slp::SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 12.0, 1e-9);
    EXPECT_NEAR(sol.x[0], 4.0, 1e-9);
    EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
    EXPECT_LT(sol.max_violation, 1e-9);
}

TEST(Simplex, SolvesMinimizationWithEqualities) {
    // min x + 2y s.t. x + y = 1, x <= 0.4  => x=0.4, y=0.6, obj=1.6.
    slp::LinearProgram p;
    const auto x = p.add_variable(1.0);
    const auto y = p.add_variable(2.0);
    p.add_constraint({{{x, 1.0}, {y, 1.0}}, slp::Relation::kEqual, 1.0, ""});
    p.add_constraint({{{x, 1.0}}, slp::Relation::kLessEqual, 0.4, ""});
    const auto sol = slp::solve(p);
    ASSERT_EQ(sol.status, slp::SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 1.6, 1e-9);
    EXPECT_NEAR(sol.x[0], 0.4, 1e-9);
    EXPECT_NEAR(sol.x[1], 0.6, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
    slp::LinearProgram p;
    const auto x = p.add_variable(1.0);
    p.add_constraint({{{x, 1.0}}, slp::Relation::kLessEqual, 1.0, ""});
    p.add_constraint({{{x, 1.0}}, slp::Relation::kGreaterEqual, 2.0, ""});
    EXPECT_EQ(slp::solve(p).status, slp::SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
    slp::LinearProgram p;
    p.set_sense(slp::Sense::kMaximize);
    const auto x = p.add_variable(1.0);
    p.add_constraint({{{x, -1.0}}, slp::Relation::kLessEqual, 0.0, ""});
    EXPECT_EQ(slp::solve(p).status, slp::SolveStatus::kUnbounded);
}

TEST(Simplex, HandlesNegativeRhsByRowFlip) {
    // -x <= -2  <=>  x >= 2; min x => x = 2.
    slp::LinearProgram p;
    const auto x = p.add_variable(1.0);
    p.add_constraint({{{x, -1.0}}, slp::Relation::kLessEqual, -2.0, ""});
    const auto sol = slp::solve(p);
    ASSERT_EQ(sol.status, slp::SolveStatus::kOptimal);
    EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
}

TEST(Simplex, RedundantEqualitiesAreTolerated) {
    // The same equality three times must not break phase 1/2.
    slp::LinearProgram p;
    const auto x = p.add_variable(1.0);
    const auto y = p.add_variable(1.0);
    for (int i = 0; i < 3; ++i)
        p.add_constraint({{{x, 1.0}, {y, 1.0}}, slp::Relation::kEqual, 2.0, ""});
    const auto sol = slp::solve(p);
    ASSERT_EQ(sol.status, slp::SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 2.0, 1e-9);
    EXPECT_LT(sol.max_violation, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
    // Klee-Minty-flavoured degeneracy: many ties in the ratio test.
    slp::LinearProgram p;
    p.set_sense(slp::Sense::kMaximize);
    const auto x = p.add_variable(1.0);
    const auto y = p.add_variable(1.0);
    const auto z = p.add_variable(1.0);
    p.add_constraint({{{x, 1.0}}, slp::Relation::kLessEqual, 0.0, ""});
    p.add_constraint({{{x, 1.0}, {y, 1.0}}, slp::Relation::kLessEqual, 0.0, ""});
    p.add_constraint(
        {{{x, 1.0}, {y, 1.0}, {z, 1.0}}, slp::Relation::kLessEqual, 1.0, ""});
    const auto sol = slp::solve(p);
    ASSERT_EQ(sol.status, slp::SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 1.0, 1e-9);
}

TEST(Simplex, EqualityOnlyProblemNeedsNoSlacks) {
    slp::LinearProgram p;
    const auto x = p.add_variable(2.0);
    const auto y = p.add_variable(1.0);
    p.add_constraint({{{x, 1.0}, {y, 1.0}}, slp::Relation::kEqual, 5.0, ""});
    const auto sol = slp::solve(p);
    ASSERT_EQ(sol.status, slp::SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 5.0, 1e-9);  // all mass on y
    EXPECT_NEAR(sol.x[1], 5.0, 1e-9);
}

TEST(Simplex, DenseConstraintHelper) {
    slp::LinearProgram p;
    p.add_variable(1.0);
    p.add_variable(1.0);
    p.add_dense_constraint({1.0, 1.0}, slp::Relation::kGreaterEqual, 2.0);
    const auto sol = slp::solve(p);
    ASSERT_EQ(sol.status, slp::SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 2.0, 1e-9);
}

TEST(Simplex, RejectsEmptyProgram) {
    slp::LinearProgram p;
    EXPECT_THROW(slp::solve(p), socbuf::util::ContractViolation);
}

// Property sweep: random feasible-by-construction LPs must come back
// optimal, feasible and no better than a known feasible point.
class SimplexPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SimplexPropertyTest, RandomFeasibleProblemsSolveCleanly) {
    std::mt19937_64 gen(GetParam());
    std::uniform_real_distribution<double> coeff(-2.0, 2.0);
    std::uniform_real_distribution<double> pos(0.1, 2.0);
    const std::size_t n = 4 + GetParam() % 5;
    const std::size_t m = 3 + GetParam() % 4;

    // Build around a known interior point x* > 0.
    std::vector<double> xstar(n);
    for (auto& v : xstar) v = pos(gen);

    slp::LinearProgram p;
    for (std::size_t j = 0; j < n; ++j) p.add_variable(pos(gen));
    for (std::size_t i = 0; i < m; ++i) {
        slp::Constraint c;
        double lhs = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            const double a = coeff(gen);
            c.terms.emplace_back(j, a);
            lhs += a * xstar[j];
        }
        c.relation = slp::Relation::kLessEqual;
        c.rhs = lhs + pos(gen);  // strictly feasible at x*
        p.add_constraint(std::move(c));
    }
    const auto sol = slp::solve(p);
    ASSERT_EQ(sol.status, slp::SolveStatus::kOptimal) << "seed "
                                                      << GetParam();
    EXPECT_LT(sol.max_violation, 1e-7);
    // Minimization with positive costs: optimum cannot exceed the value at
    // the known feasible point x*.
    EXPECT_LE(sol.objective, p.objective_value(xstar) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Range(1u, 21u));

TEST(Simplex, TotallyDegenerateBalanceSystemTerminates) {
    // Regression: occupation-measure LPs have every rhs equal to zero
    // except one normalization row. Without anti-degeneracy measures the
    // simplex wanders for millions of iterations on these (observed on the
    // paper's bus-b subsystem); the Wolfe rhs perturbation must keep the
    // pivot count tiny. This is a miniature of that structure: a ring CTMC
    // balance system plus normalization.
    slp::LinearProgram p;
    const int n = 24;
    std::vector<std::size_t> x;
    for (int i = 0; i < n; ++i)
        x.push_back(p.add_variable(i % 3 == 0 ? 1.0 : 0.2));
    // Ring balance: rate out of i equals rate in from i-1 (all rhs zero).
    for (int i = 1; i < n; ++i) {
        p.add_constraint({{{x[static_cast<std::size_t>(i)], 1.0},
                           {x[static_cast<std::size_t>((i + n - 1) % n)],
                            -1.0}},
                          slp::Relation::kEqual,
                          0.0,
                          ""});
    }
    slp::Constraint norm;
    norm.relation = slp::Relation::kEqual;
    norm.rhs = 1.0;
    for (int i = 0; i < n; ++i)
        norm.terms.emplace_back(x[static_cast<std::size_t>(i)], 1.0);
    p.add_constraint(std::move(norm));

    const auto sol = slp::solve(p);
    ASSERT_EQ(sol.status, slp::SolveStatus::kOptimal);
    EXPECT_LT(sol.iterations, 2000u);
    EXPECT_LT(sol.max_violation, 1e-6);
    // Ring balance forces the uniform distribution; objective is its cost.
    double expected = 0.0;
    for (int i = 0; i < n; ++i) expected += (i % 3 == 0 ? 1.0 : 0.2) / n;
    EXPECT_NEAR(sol.objective, expected, 1e-6);
}

TEST(Simplex, PerturbationErrorStaysBelowFeasibilityTolerance) {
    // The rhs perturbation must not visibly move solutions.
    slp::LinearProgram p;
    const auto x = p.add_variable(1.0);
    const auto y = p.add_variable(2.0);
    p.add_constraint({{{x, 1.0}, {y, 1.0}}, slp::Relation::kEqual, 1.0, ""});
    const auto sol = slp::solve(p);
    ASSERT_EQ(sol.status, slp::SolveStatus::kOptimal);
    EXPECT_NEAR(sol.x[0], 1.0, 1e-8);
    EXPECT_NEAR(sol.objective, 1.0, 1e-8);
}

TEST(Simplex, PerturbationCanBeDisabled) {
    slp::SimplexOptions opts;
    opts.rhs_perturbation = 0.0;
    const auto sol = slp::solve(textbook_max(), opts);
    ASSERT_EQ(sol.status, slp::SolveStatus::kOptimal);
    EXPECT_NEAR(sol.objective, 12.0, 1e-9);
}
