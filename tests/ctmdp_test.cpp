#include "ctmc/birth_death.hpp"
#include "ctmdp/lp_solver.hpp"
#include "ctmdp/model.hpp"
#include "ctmdp/occupation.hpp"
#include "ctmdp/policy.hpp"
#include "ctmdp/policy_iteration.hpp"
#include "ctmdp/value_iteration.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

namespace sm = socbuf::ctmdp;

namespace {

/// Two-state toy with a hand-computable optimum.
/// State 0 offers: A (rate 1 -> state 1, cost 2) giving average cost 4/3,
/// or B (rate 4 -> state 1, cost 3) giving average cost 1. B is optimal.
sm::CtmdpModel two_state_toy(std::size_t extra_costs = 0) {
    sm::CtmdpModel m(extra_costs);
    const auto s0 = m.add_state("idle");
    const auto s1 = m.add_state("busy");
    sm::Action a;
    a.name = "A";
    a.transitions = {{s1, 1.0}};
    a.cost = 2.0;
    a.extra_costs.assign(extra_costs, 0.0);
    m.add_action(s0, a);
    sm::Action b;
    b.name = "B";
    b.transitions = {{s1, 4.0}};
    b.cost = 3.0;
    b.extra_costs.assign(extra_costs, extra_costs > 0 ? 1.0 : 0.0);
    m.add_action(s0, b);
    sm::Action done;
    done.name = "done";
    done.transitions = {{s0, 2.0}};
    done.cost = 0.0;
    done.extra_costs.assign(extra_costs, 0.0);
    m.add_action(s1, done);
    return m;
}

/// Single M/M/1/K queue as a (single-action) CTMDP whose average cost is
/// the closed-form loss rate.
sm::CtmdpModel mm1k_model(double lambda, double mu, std::size_t k) {
    sm::CtmdpModel m;
    for (std::size_t i = 0; i <= k; ++i)
        m.add_state("q" + std::to_string(i));
    for (std::size_t i = 0; i <= k; ++i) {
        sm::Action a;
        a.name = "serve";
        if (i < k) a.transitions.push_back({i + 1, lambda});
        if (i > 0) a.transitions.push_back({i - 1, mu});
        a.cost = (i == k) ? lambda : 0.0;  // loss rate while full
        m.add_action(i, a);
    }
    return m;
}

/// Random strongly-connected CTMDP for solver cross-validation.
sm::CtmdpModel random_model(unsigned seed, std::size_t n_states,
                            std::size_t n_actions) {
    std::mt19937_64 gen(seed);
    std::uniform_real_distribution<double> rate(0.2, 3.0);
    std::uniform_real_distribution<double> cost(0.0, 5.0);
    sm::CtmdpModel m;
    for (std::size_t s = 0; s < n_states; ++s) m.add_state();
    for (std::size_t s = 0; s < n_states; ++s) {
        for (std::size_t a = 0; a < n_actions; ++a) {
            sm::Action act;
            // A guaranteed ring edge keeps every policy irreducible.
            act.transitions.push_back({(s + 1) % n_states, rate(gen)});
            const std::size_t other = gen() % n_states;
            if (other != s)
                act.transitions.push_back({other, rate(gen)});
            act.cost = cost(gen);
            m.add_action(s, act);
        }
    }
    return m;
}

}  // namespace

TEST(Model, IndexingRoundTrips) {
    const auto m = two_state_toy();
    EXPECT_EQ(m.state_count(), 2u);
    EXPECT_EQ(m.action_count(0), 2u);
    EXPECT_EQ(m.action_count(1), 1u);
    EXPECT_EQ(m.pair_count(), 3u);
    for (std::size_t p = 0; p < m.pair_count(); ++p) {
        EXPECT_EQ(m.pair_index(m.pair_state(p), m.pair_action(p)), p);
    }
}

TEST(Model, ExitRatesIgnoreSelfLoops) {
    sm::CtmdpModel m;
    m.add_state();
    m.add_state();
    sm::Action a;
    a.transitions = {{0, 5.0}, {1, 2.0}};  // self-loop rate must not count
    m.add_action(0, a);
    sm::Action b;
    b.transitions = {{0, 1.0}};
    m.add_action(1, b);
    EXPECT_DOUBLE_EQ(m.exit_rate(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(m.max_exit_rate(), 2.0);
}

TEST(Model, ValidateCatchesStructuralErrors) {
    sm::CtmdpModel empty;
    EXPECT_THROW(empty.validate(), socbuf::util::ModelError);

    sm::CtmdpModel no_action;
    no_action.add_state();
    EXPECT_THROW(no_action.validate(), socbuf::util::ModelError);

    sm::CtmdpModel bad_target;
    bad_target.add_state();
    sm::Action a;
    a.transitions = {{5, 1.0}};
    bad_target.add_action(0, a);
    EXPECT_THROW(bad_target.validate(), socbuf::util::ModelError);

    sm::CtmdpModel wrong_extra(2);
    wrong_extra.add_state();
    sm::Action b;
    b.extra_costs = {1.0};  // width 1, model wants 2
    EXPECT_THROW(wrong_extra.add_action(0, b),
                 socbuf::util::ContractViolation);
}

TEST(LpSolver, FindsKnownOptimum) {
    const auto m = two_state_toy();
    const auto r = sm::solve_average_cost_lp(m);
    ASSERT_EQ(r.status, socbuf::lp::SolveStatus::kOptimal);
    EXPECT_NEAR(r.average_cost, 1.0, 1e-8);
    // Optimal policy picks B deterministically in state 0.
    EXPECT_NEAR(r.policy.probability(0, 1), 1.0, 1e-6);
    EXPECT_TRUE(r.policy.is_deterministic(1e-6));
    // State probabilities are the induced chain's stationary law.
    EXPECT_NEAR(r.state_probability[0], 1.0 / 3.0, 1e-8);
    EXPECT_NEAR(r.state_probability[1], 2.0 / 3.0, 1e-8);
}

TEST(LpSolver, OccupationSumsToOne) {
    const auto m = two_state_toy();
    const auto r = sm::solve_average_cost_lp(m);
    double total = 0.0;
    for (double x : r.occupation) total += x;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LpSolver, ConstraintForcesRandomization) {
    // Bound the extra cost (incurred only by action B in state 0) to half
    // of its unconstrained value: the policy must mix A and B — and per
    // Feinberg's K-switching bound, randomize in at most 1 state.
    const auto m = two_state_toy(/*extra_costs=*/1);
    const auto unconstrained = sm::solve_average_cost_lp(m);
    ASSERT_EQ(unconstrained.status, socbuf::lp::SolveStatus::kOptimal);
    const double full_extra = unconstrained.extra_cost_values[0];
    ASSERT_GT(full_extra, 0.0);

    const auto r = sm::solve_average_cost_lp(
        m, {sm::CostBound{0, full_extra / 2.0}});
    ASSERT_EQ(r.status, socbuf::lp::SolveStatus::kOptimal);
    EXPECT_LE(r.extra_cost_values[0], full_extra / 2.0 + 1e-9);
    EXPECT_EQ(r.policy.switching_state_count(1e-6), 1u);
    // Cost sits between the optimal and the all-A policy.
    EXPECT_GT(r.average_cost, 1.0 - 1e-9);
    EXPECT_LT(r.average_cost, 4.0 / 3.0 + 1e-9);
}

TEST(LpSolver, InfeasibleConstraintReported) {
    const auto m = two_state_toy(/*extra_costs=*/1);
    // Demanding negative extra cost is impossible.
    const auto r = sm::solve_average_cost_lp(m, {sm::CostBound{0, -1.0}});
    EXPECT_EQ(r.status, socbuf::lp::SolveStatus::kInfeasible);
}

TEST(LpSolver, SingleActionChainReproducesMm1k) {
    const double lambda = 0.8;
    const double mu = 1.0;
    const std::size_t k = 5;
    const auto m = mm1k_model(lambda, mu, k);
    const auto r = sm::solve_average_cost_lp(m);
    ASSERT_EQ(r.status, socbuf::lp::SolveStatus::kOptimal);
    const auto pi = socbuf::ctmc::mm1k_stationary(lambda, mu, k);
    for (std::size_t i = 0; i <= k; ++i)
        EXPECT_NEAR(r.state_probability[i], pi[i], 1e-7) << "state " << i;
    EXPECT_NEAR(r.average_cost, lambda * pi[k], 1e-8);
}

TEST(ValueIteration, MatchesKnownOptimum) {
    const auto m = two_state_toy();
    const auto r = sm::relative_value_iteration(m);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.gain, 1.0, 1e-7);
    EXPECT_EQ(r.policy.action(0), 1u);  // B
}

TEST(PolicyIteration, MatchesKnownOptimum) {
    const auto m = two_state_toy();
    const auto r = sm::policy_iteration(m);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.gain, 1.0, 1e-9);
    EXPECT_EQ(r.policy.action(0), 1u);
    EXPECT_LE(r.policy_updates, 5u);
}

TEST(PolicyEvaluation, AverageCostOfFixedPolicy) {
    const auto m = two_state_toy();
    // Force the suboptimal action A: average cost 4/3.
    const auto all_a = sm::RandomizedPolicy::from_deterministic(
        sm::DeterministicPolicy({0, 0}), m);
    EXPECT_NEAR(sm::average_cost_of_policy(m, all_a), 4.0 / 3.0, 1e-8);
}

class SolverAgreementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SolverAgreementTest, LpViAndPiAgreeOnRandomModels) {
    const unsigned seed = GetParam();
    const auto m = random_model(seed, 3 + seed % 4, 2 + seed % 2);
    const auto lp = sm::solve_average_cost_lp(m);
    ASSERT_EQ(lp.status, socbuf::lp::SolveStatus::kOptimal);
    const auto vi = sm::relative_value_iteration(m);
    ASSERT_TRUE(vi.converged);
    const auto pi = sm::policy_iteration(m);
    ASSERT_TRUE(pi.converged);
    EXPECT_NEAR(lp.average_cost, vi.gain, 1e-6) << "seed " << seed;
    EXPECT_NEAR(vi.gain, pi.gain, 1e-6) << "seed " << seed;
    // The LP's policy really achieves the LP's objective value.
    EXPECT_NEAR(sm::average_cost_of_policy(m, lp.policy), lp.average_cost,
                1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreementTest,
                         ::testing::Range(1u, 16u));

TEST(Policy, RandomizedPolicyValidation) {
    EXPECT_THROW(sm::RandomizedPolicy({{0.5, 0.4}}),  // sums to 0.9
                 socbuf::util::ContractViolation);
    const sm::RandomizedPolicy p({{0.25, 0.75}});
    EXPECT_NEAR(p.probability(0, 1), 0.75, 1e-12);
    EXPECT_EQ(p.switching_state_count(), 1u);
    EXPECT_EQ(p.mode().action(0), 1u);
}

TEST(Policy, SamplingFollowsDistribution) {
    const sm::RandomizedPolicy p({{0.2, 0.8}});
    socbuf::rng::RandomEngine eng(99);
    int ones = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (p.sample(0, eng) == 1) ++ones;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.8, 0.02);
}

TEST(Policy, InducedGeneratorMixesActions) {
    const auto m = two_state_toy();
    const sm::RandomizedPolicy mix({{0.5, 0.5}, {1.0}});
    const auto gen = sm::induced_generator(m, mix);
    // Mixed rate out of state 0: 0.5*1 + 0.5*4 = 2.5.
    EXPECT_NEAR(gen.rate(0, 1), 2.5, 1e-12);
    EXPECT_NEAR(gen.rate(1, 0), 2.0, 1e-12);
}

TEST(Occupation, PolicyOccupationMatchesLp) {
    const auto m = two_state_toy();
    const auto lp = sm::solve_average_cost_lp(m);
    const auto occ = sm::occupation_of_policy(m, lp.policy);
    ASSERT_EQ(occ.size(), lp.occupation.size());
    for (std::size_t i = 0; i < occ.size(); ++i)
        EXPECT_NEAR(occ[i], lp.occupation[i], 1e-7);
}

TEST(Occupation, MarginalsAndQuantiles) {
    // pi over 4 states mapping to feature k = state % 2.
    const socbuf::linalg::Vector pi{0.1, 0.2, 0.3, 0.4};
    const auto marg = sm::state_marginal(
        pi, [](std::size_t s) { return s % 2; }, 2);
    EXPECT_NEAR(marg[0], 0.4, 1e-12);
    EXPECT_NEAR(marg[1], 0.6, 1e-12);
    EXPECT_NEAR(sm::marginal_mean(marg), 0.6, 1e-12);

    const std::vector<double> dist{0.5, 0.3, 0.15, 0.05};
    EXPECT_EQ(sm::marginal_quantile(dist, 0.5), 0u);
    EXPECT_EQ(sm::marginal_quantile(dist, 0.2), 1u);
    EXPECT_EQ(sm::marginal_quantile(dist, 0.05), 2u);
    EXPECT_EQ(sm::marginal_quantile(dist, 0.0), 3u);
    EXPECT_EQ(sm::marginal_quantile(dist, 1.0), 0u);
}
