#include "arch/presets.hpp"
#include "core/subsystem_model.hpp"
#include "ctmc/birth_death.hpp"
#include "ctmdp/lp_solver.hpp"
#include "ctmdp/model.hpp"
#include "ctmdp/occupation.hpp"
#include "ctmdp/policy.hpp"
#include "ctmdp/policy_iteration.hpp"
#include "ctmdp/solver.hpp"
#include "ctmdp/value_iteration.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "split/splitter.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <utility>

namespace sm = socbuf::ctmdp;

namespace {

/// Two-state toy with a hand-computable optimum.
/// State 0 offers: A (rate 1 -> state 1, cost 2) giving average cost 4/3,
/// or B (rate 4 -> state 1, cost 3) giving average cost 1. B is optimal.
sm::CtmdpModel two_state_toy(std::size_t extra_costs = 0) {
    sm::CtmdpModel m(extra_costs);
    const auto s0 = m.add_state("idle");
    const auto s1 = m.add_state("busy");
    sm::Action a;
    a.name = "A";
    a.transitions = {{s1, 1.0}};
    a.cost = 2.0;
    a.extra_costs.assign(extra_costs, 0.0);
    m.add_action(s0, a);
    sm::Action b;
    b.name = "B";
    b.transitions = {{s1, 4.0}};
    b.cost = 3.0;
    b.extra_costs.assign(extra_costs, extra_costs > 0 ? 1.0 : 0.0);
    m.add_action(s0, b);
    sm::Action done;
    done.name = "done";
    done.transitions = {{s0, 2.0}};
    done.cost = 0.0;
    done.extra_costs.assign(extra_costs, 0.0);
    m.add_action(s1, done);
    return m;
}

/// Single M/M/1/K queue as a (single-action) CTMDP whose average cost is
/// the closed-form loss rate.
sm::CtmdpModel mm1k_model(double lambda, double mu, std::size_t k) {
    sm::CtmdpModel m;
    for (std::size_t i = 0; i <= k; ++i)
        m.add_state("q" + std::to_string(i));
    for (std::size_t i = 0; i <= k; ++i) {
        sm::Action a;
        a.name = "serve";
        if (i < k) a.transitions.push_back({i + 1, lambda});
        if (i > 0) a.transitions.push_back({i - 1, mu});
        a.cost = (i == k) ? lambda : 0.0;  // loss rate while full
        m.add_action(i, a);
    }
    return m;
}

/// Random strongly-connected CTMDP for solver cross-validation.
sm::CtmdpModel random_model(unsigned seed, std::size_t n_states,
                            std::size_t n_actions) {
    std::mt19937_64 gen(seed);
    std::uniform_real_distribution<double> rate(0.2, 3.0);
    std::uniform_real_distribution<double> cost(0.0, 5.0);
    sm::CtmdpModel m;
    for (std::size_t s = 0; s < n_states; ++s) m.add_state();
    for (std::size_t s = 0; s < n_states; ++s) {
        for (std::size_t a = 0; a < n_actions; ++a) {
            sm::Action act;
            // A guaranteed ring edge keeps every policy irreducible.
            act.transitions.push_back({(s + 1) % n_states, rate(gen)});
            const std::size_t other = gen() % n_states;
            if (other != s)
                act.transitions.push_back({other, rate(gen)});
            act.cost = cost(gen);
            m.add_action(s, act);
        }
    }
    return m;
}

}  // namespace

TEST(Model, IndexingRoundTrips) {
    const auto m = two_state_toy();
    EXPECT_EQ(m.state_count(), 2u);
    EXPECT_EQ(m.action_count(0), 2u);
    EXPECT_EQ(m.action_count(1), 1u);
    EXPECT_EQ(m.pair_count(), 3u);
    for (std::size_t p = 0; p < m.pair_count(); ++p) {
        EXPECT_EQ(m.pair_index(m.pair_state(p), m.pair_action(p)), p);
    }
}

TEST(Model, ExitRatesIgnoreSelfLoops) {
    sm::CtmdpModel m;
    m.add_state();
    m.add_state();
    sm::Action a;
    a.transitions = {{0, 5.0}, {1, 2.0}};  // self-loop rate must not count
    m.add_action(0, a);
    sm::Action b;
    b.transitions = {{0, 1.0}};
    m.add_action(1, b);
    EXPECT_DOUBLE_EQ(m.exit_rate(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(m.max_exit_rate(), 2.0);
}

TEST(Model, ValidateCatchesStructuralErrors) {
    sm::CtmdpModel empty;
    EXPECT_THROW(empty.validate(), socbuf::util::ModelError);

    sm::CtmdpModel no_action;
    no_action.add_state();
    EXPECT_THROW(no_action.validate(), socbuf::util::ModelError);

    sm::CtmdpModel bad_target;
    bad_target.add_state();
    sm::Action a;
    a.transitions = {{5, 1.0}};
    bad_target.add_action(0, a);
    EXPECT_THROW(bad_target.validate(), socbuf::util::ModelError);

    sm::CtmdpModel wrong_extra(2);
    wrong_extra.add_state();
    sm::Action b;
    b.extra_costs = {1.0};  // width 1, model wants 2
    EXPECT_THROW(wrong_extra.add_action(0, b),
                 socbuf::util::ContractViolation);
}

TEST(LpSolver, FindsKnownOptimum) {
    const auto m = two_state_toy();
    const auto r = sm::solve_average_cost_lp(m);
    ASSERT_EQ(r.status, socbuf::lp::SolveStatus::kOptimal);
    EXPECT_NEAR(r.average_cost, 1.0, 1e-8);
    // Optimal policy picks B deterministically in state 0.
    EXPECT_NEAR(r.policy.probability(0, 1), 1.0, 1e-6);
    EXPECT_TRUE(r.policy.is_deterministic(1e-6));
    // State probabilities are the induced chain's stationary law.
    EXPECT_NEAR(r.state_probability[0], 1.0 / 3.0, 1e-8);
    EXPECT_NEAR(r.state_probability[1], 2.0 / 3.0, 1e-8);
}

TEST(LpSolver, OccupationSumsToOne) {
    const auto m = two_state_toy();
    const auto r = sm::solve_average_cost_lp(m);
    double total = 0.0;
    for (double x : r.occupation) total += x;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(LpSolver, ConstraintForcesRandomization) {
    // Bound the extra cost (incurred only by action B in state 0) to half
    // of its unconstrained value: the policy must mix A and B — and per
    // Feinberg's K-switching bound, randomize in at most 1 state.
    const auto m = two_state_toy(/*extra_costs=*/1);
    const auto unconstrained = sm::solve_average_cost_lp(m);
    ASSERT_EQ(unconstrained.status, socbuf::lp::SolveStatus::kOptimal);
    const double full_extra = unconstrained.extra_cost_values[0];
    ASSERT_GT(full_extra, 0.0);

    const auto r = sm::solve_average_cost_lp(
        m, {sm::CostBound{0, full_extra / 2.0}});
    ASSERT_EQ(r.status, socbuf::lp::SolveStatus::kOptimal);
    EXPECT_LE(r.extra_cost_values[0], full_extra / 2.0 + 1e-9);
    EXPECT_EQ(r.policy.switching_state_count(1e-6), 1u);
    // Cost sits between the optimal and the all-A policy.
    EXPECT_GT(r.average_cost, 1.0 - 1e-9);
    EXPECT_LT(r.average_cost, 4.0 / 3.0 + 1e-9);
}

TEST(LpSolver, InfeasibleConstraintReported) {
    const auto m = two_state_toy(/*extra_costs=*/1);
    // Demanding negative extra cost is impossible.
    const auto r = sm::solve_average_cost_lp(m, {sm::CostBound{0, -1.0}});
    EXPECT_EQ(r.status, socbuf::lp::SolveStatus::kInfeasible);
}

TEST(LpSolver, SingleActionChainReproducesMm1k) {
    const double lambda = 0.8;
    const double mu = 1.0;
    const std::size_t k = 5;
    const auto m = mm1k_model(lambda, mu, k);
    const auto r = sm::solve_average_cost_lp(m);
    ASSERT_EQ(r.status, socbuf::lp::SolveStatus::kOptimal);
    const auto pi = socbuf::ctmc::mm1k_stationary(lambda, mu, k);
    for (std::size_t i = 0; i <= k; ++i)
        EXPECT_NEAR(r.state_probability[i], pi[i], 1e-7) << "state " << i;
    EXPECT_NEAR(r.average_cost, lambda * pi[k], 1e-8);
}

TEST(ValueIteration, MatchesKnownOptimum) {
    const auto m = two_state_toy();
    const auto r = sm::relative_value_iteration(m);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.gain, 1.0, 1e-7);
    EXPECT_EQ(r.policy.action(0), 1u);  // B
}

TEST(PolicyIteration, MatchesKnownOptimum) {
    const auto m = two_state_toy();
    const auto r = sm::policy_iteration(m);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.gain, 1.0, 1e-9);
    EXPECT_EQ(r.policy.action(0), 1u);
    EXPECT_LE(r.policy_updates, 5u);
}

TEST(PolicyEvaluation, AverageCostOfFixedPolicy) {
    const auto m = two_state_toy();
    // Force the suboptimal action A: average cost 4/3.
    const auto all_a = sm::RandomizedPolicy::from_deterministic(
        sm::DeterministicPolicy({0, 0}), m);
    EXPECT_NEAR(sm::average_cost_of_policy(m, all_a), 4.0 / 3.0, 1e-8);
}

class SolverAgreementTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SolverAgreementTest, LpViAndPiAgreeOnRandomModels) {
    const unsigned seed = GetParam();
    const auto m = random_model(seed, 3 + seed % 4, 2 + seed % 2);
    const auto lp = sm::solve_average_cost_lp(m);
    ASSERT_EQ(lp.status, socbuf::lp::SolveStatus::kOptimal);
    const auto vi = sm::relative_value_iteration(m);
    ASSERT_TRUE(vi.converged);
    const auto pi = sm::policy_iteration(m);
    ASSERT_TRUE(pi.converged);
    EXPECT_NEAR(lp.average_cost, vi.gain, 1e-6) << "seed " << seed;
    EXPECT_NEAR(vi.gain, pi.gain, 1e-6) << "seed " << seed;
    // The LP's policy really achieves the LP's objective value.
    EXPECT_NEAR(sm::average_cost_of_policy(m, lp.policy), lp.average_cost,
                1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreementTest,
                         ::testing::Range(1u, 16u));

TEST(Policy, RandomizedPolicyValidation) {
    EXPECT_THROW(sm::RandomizedPolicy({{0.5, 0.4}}),  // sums to 0.9
                 socbuf::util::ContractViolation);
    const sm::RandomizedPolicy p({{0.25, 0.75}});
    EXPECT_NEAR(p.probability(0, 1), 0.75, 1e-12);
    EXPECT_EQ(p.switching_state_count(), 1u);
    EXPECT_EQ(p.mode().action(0), 1u);
}

TEST(Policy, SamplingFollowsDistribution) {
    const sm::RandomizedPolicy p({{0.2, 0.8}});
    socbuf::rng::RandomEngine eng(99);
    int ones = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        if (p.sample(0, eng) == 1) ++ones;
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.8, 0.02);
}

TEST(Policy, InducedGeneratorMixesActions) {
    const auto m = two_state_toy();
    const sm::RandomizedPolicy mix({{0.5, 0.5}, {1.0}});
    const auto gen = sm::induced_generator(m, mix);
    // Mixed rate out of state 0: 0.5*1 + 0.5*4 = 2.5.
    EXPECT_NEAR(gen.rate(0, 1), 2.5, 1e-12);
    EXPECT_NEAR(gen.rate(1, 0), 2.0, 1e-12);
}

TEST(Occupation, PolicyOccupationMatchesLp) {
    const auto m = two_state_toy();
    const auto lp = sm::solve_average_cost_lp(m);
    const auto occ = sm::occupation_of_policy(m, lp.policy);
    ASSERT_EQ(occ.size(), lp.occupation.size());
    for (std::size_t i = 0; i < occ.size(); ++i)
        EXPECT_NEAR(occ[i], lp.occupation[i], 1e-7);
}

TEST(Occupation, MarginalsAndQuantiles) {
    // pi over 4 states mapping to feature k = state % 2.
    const socbuf::linalg::Vector pi{0.1, 0.2, 0.3, 0.4};
    const auto marg = sm::state_marginal(
        pi, [](std::size_t s) { return s % 2; }, 2);
    EXPECT_NEAR(marg[0], 0.4, 1e-12);
    EXPECT_NEAR(marg[1], 0.6, 1e-12);
    EXPECT_NEAR(sm::marginal_mean(marg), 0.6, 1e-12);

    const std::vector<double> dist{0.5, 0.3, 0.15, 0.05};
    EXPECT_EQ(sm::marginal_quantile(dist, 0.5), 0u);
    EXPECT_EQ(sm::marginal_quantile(dist, 0.2), 1u);
    EXPECT_EQ(sm::marginal_quantile(dist, 0.05), 2u);
    EXPECT_EQ(sm::marginal_quantile(dist, 0.0), 3u);
    EXPECT_EQ(sm::marginal_quantile(dist, 1.0), 0u);
}

TEST(SolverRegistry, ForcedChoicesRunTheRequestedAlgorithm) {
    const auto m = two_state_toy();
    sm::SolverRegistry registry;
    for (const auto& [choice, kind] :
         {std::pair{sm::SolverChoice::kLp, sm::SolverKind::kLp},
          std::pair{sm::SolverChoice::kValueIteration,
                    sm::SolverKind::kValueIteration},
          std::pair{sm::SolverChoice::kPolicyIteration,
                    sm::SolverKind::kPolicyIteration}}) {
        sm::DispatchOptions d;
        d.choice = choice;
        const auto sol = registry.solve(m, d);
        EXPECT_EQ(sol.solved_by, kind);
        EXPECT_TRUE(sol.converged);
        EXPECT_NEAR(sol.gain, 1.0, 1e-8);  // known optimum of the toy
    }
    const auto stats = registry.stats();
    EXPECT_EQ(stats.lp_solves, 1u);
    EXPECT_EQ(stats.vi_solves, 1u);
    EXPECT_EQ(stats.pi_solves, 1u);
    EXPECT_EQ(stats.total_solves(), 3u);
}

TEST(SolverRegistry, AllSolversAgreeOnGainPolicyAndStationary) {
    sm::SolverRegistry registry;
    for (const unsigned seed : {1u, 2u, 3u, 4u, 5u}) {
        const auto m = random_model(seed, 4 + seed % 3, 2);
        std::vector<sm::SubsystemSolution> sols;
        for (const auto choice :
             {sm::SolverChoice::kLp, sm::SolverChoice::kValueIteration,
              sm::SolverChoice::kPolicyIteration}) {
            sm::DispatchOptions d;
            d.choice = choice;
            sols.push_back(registry.solve(m, d));
        }
        for (std::size_t i = 1; i < sols.size(); ++i) {
            EXPECT_NEAR(sols[i].gain, sols[0].gain, 1e-6)
                << "seed " << seed;
            // Same greedy (modal) policy...
            EXPECT_EQ(sols[i].policy.mode(), sols[0].policy.mode())
                << "seed " << seed;
            // ...hence the same stationary distribution.
            ASSERT_EQ(sols[i].stationary.size(), sols[0].stationary.size());
            for (std::size_t s = 0; s < sols[0].stationary.size(); ++s)
                EXPECT_NEAR(sols[i].stationary[s], sols[0].stationary[s],
                            1e-6)
                    << "seed " << seed << " state " << s;
        }
    }
}

TEST(SolverRegistry, AutoEscalatesBySize) {
    const auto m = random_model(7, 6, 2);  // 6 states, 12 pairs
    sm::SolverRegistry registry;

    sm::DispatchOptions lp_sized;  // pairs fit under the LP limit
    EXPECT_EQ(registry.select(m, lp_sized), sm::SolverKind::kLp);

    sm::DispatchOptions pi_sized;  // pairs too many, states fit for PI
    pi_sized.lp_pair_limit = 4;
    EXPECT_EQ(registry.select(m, pi_sized),
              sm::SolverKind::kPolicyIteration);

    sm::DispatchOptions vi_sized;  // both limits exceeded
    vi_sized.lp_pair_limit = 4;
    vi_sized.pi_state_limit = 3;
    EXPECT_EQ(registry.select(m, vi_sized),
              sm::SolverKind::kValueIteration);

    // The escalated solves still land on the same gain.
    const auto via_lp = registry.solve(m, lp_sized);
    const auto via_pi = registry.solve(m, pi_sized);
    const auto via_vi = registry.solve(m, vi_sized);
    EXPECT_EQ(via_lp.solved_by, sm::SolverKind::kLp);
    EXPECT_EQ(via_pi.solved_by, sm::SolverKind::kPolicyIteration);
    EXPECT_EQ(via_vi.solved_by, sm::SolverKind::kValueIteration);
    EXPECT_NEAR(via_pi.gain, via_lp.gain, 1e-6);
    EXPECT_NEAR(via_vi.gain, via_lp.gain, 1e-6);
}

TEST(SolverRegistry, SolutionOccupationSumsToOne) {
    const auto m = mm1k_model(0.8, 1.0, 4);
    sm::SolverRegistry registry;
    for (const auto choice :
         {sm::SolverChoice::kLp, sm::SolverChoice::kValueIteration,
          sm::SolverChoice::kPolicyIteration}) {
        sm::DispatchOptions d;
        d.choice = choice;
        const auto sol = registry.solve(m, d);
        double mass = 0.0;
        for (const double x : sol.occupation) mass += x;
        EXPECT_NEAR(mass, 1.0, 1e-8);
        EXPECT_EQ(sol.switching_states, 0u);  // unconstrained => no mixing
    }
}

TEST(SolverRegistry, StatsResetAndConcurrentSolvesCount) {
    sm::SolverRegistry registry;
    const auto m = two_state_toy();
    sm::DispatchOptions d;
    d.choice = sm::SolverChoice::kValueIteration;
    socbuf::exec::ThreadPool pool(4);
    socbuf::exec::parallel_for_index(
        pool, 16, [&](std::size_t) { (void)registry.solve(m, d); });
    EXPECT_EQ(registry.stats().vi_solves, 16u);
    registry.reset_stats();
    EXPECT_EQ(registry.stats().total_solves(), 0u);
}

TEST(MakeSolver, StandaloneSolversCarryTheirIdentity) {
    for (const auto kind :
         {sm::SolverKind::kLp, sm::SolverKind::kValueIteration,
          sm::SolverKind::kPolicyIteration}) {
        const auto solver = sm::make_solver(kind);
        ASSERT_NE(solver, nullptr);
        EXPECT_EQ(solver->kind(), kind);
        const auto sol = solver->solve(two_state_toy(), {});
        EXPECT_NEAR(sol.gain, 1.0, 1e-8);
        EXPECT_EQ(sol.solved_by, kind);
    }
}

TEST(Model, BandwidthAndTransitionCountTrackStructure) {
    sm::CtmdpModel m;
    for (int i = 0; i < 5; ++i) m.add_state();
    sm::Action a;
    a.transitions = {{1, 1.0}, {0, 0.0}};  // zero-rate edge: count, no band
    m.add_action(0, a);
    EXPECT_EQ(m.bandwidth(), 1u);
    EXPECT_EQ(m.transition_count(), 2u);
    sm::Action b;
    b.transitions = {{4, 2.0}};
    m.add_action(1, b);  // |4 - 1| = 3 widens the band
    EXPECT_EQ(m.bandwidth(), 3u);
    EXPECT_EQ(m.transition_count(), 3u);
    for (int i = 0; i < 3; ++i) {
        sm::Action c;
        c.transitions = {{0, 1.0}};
        m.add_action(2 + i, c);
    }
    EXPECT_EQ(m.bandwidth(), 4u);  // state 4 -> 0
}

namespace {

/// Every figure1 subsystem as a CTMDP at the given per-flow cap — the
/// "preset subsystems" the banded-vs-dense pinning sweeps.
std::vector<socbuf::core::SubsystemCtmdp> figure1_subsystems(long cap) {
    static const auto sys = socbuf::arch::figure1_system();
    static const auto split = socbuf::split::split_architecture(sys);
    std::vector<socbuf::core::SubsystemCtmdp> models;
    for (const auto& sub : split.subsystems) {
        std::vector<long> caps(sub.flows.size(), cap);
        std::vector<double> rates;
        for (const auto& f : sub.flows) rates.push_back(f.arrival_rate);
        models.emplace_back(sub, caps, rates);
    }
    return models;
}

}  // namespace

TEST(PolicyIteration, BandedEvaluationMatchesDenseOnPresetSubsystems) {
    // The bordered-banded evaluation is a different elimination order, so
    // agreement is to solver tolerance, not bit for bit; gains, biases
    // and the selected policies must still coincide. Cap 3 puts the
    // 3-flow bus over the n >= 40 gate (64 states, bandwidth 16).
    for (const long cap : {3L, 4L}) {
        for (const auto& sub : figure1_subsystems(cap)) {
            const auto& model = sub.model();
            sm::PiOptions banded;
            banded.banded_evaluation = true;
            sm::PiOptions dense;
            dense.banded_evaluation = false;
            const auto rb = sm::policy_iteration(model, banded);
            const auto rd = sm::policy_iteration(model, dense);
            ASSERT_TRUE(rb.converged);
            ASSERT_TRUE(rd.converged);
            EXPECT_NEAR(rb.gain, rd.gain, 1e-8)
                << "states " << model.state_count();
            EXPECT_EQ(rb.policy.choices(), rd.policy.choices());
            ASSERT_EQ(rb.bias.size(), rd.bias.size());
            for (std::size_t s = 0; s < rb.bias.size(); ++s)
                EXPECT_NEAR(rb.bias[s], rd.bias[s], 1e-7);
        }
    }
}

TEST(SolverRegistry, SparseVsDensePathsAgreeOnPresetSubsystems) {
    // Registry-level pinning across every preset subsystem: the banded-PI
    // and (CSR) VI paths must agree with the LP on the optimal gain.
    sm::SolverRegistry registry;
    for (const auto& sub : figure1_subsystems(2)) {
        const auto& model = sub.model();
        sm::DispatchOptions lp;
        lp.choice = sm::SolverChoice::kLp;
        sm::DispatchOptions pi;
        pi.choice = sm::SolverChoice::kPolicyIteration;
        sm::DispatchOptions vi;
        vi.choice = sm::SolverChoice::kValueIteration;
        const auto rlp = registry.solve(model, lp);
        const auto rpi = registry.solve(model, pi);
        const auto rvi = registry.solve(model, vi);
        EXPECT_NEAR(rlp.gain, rpi.gain, 1e-6);
        EXPECT_NEAR(rlp.gain, rvi.gain, 1e-6);
    }
}

TEST(PolicyIteration, WarmSeedConvergesInOneUpdate) {
    const auto models = figure1_subsystems(3);
    const auto& model = models.front().model();
    const auto cold = sm::policy_iteration(model);
    ASSERT_TRUE(cold.converged);
    sm::PiOptions warm;
    warm.initial_policy = cold.policy.choices();
    const auto seeded = sm::policy_iteration(model, warm);
    ASSERT_TRUE(seeded.converged);
    // Re-evaluating the converged policy confirms it greedily; one update.
    EXPECT_EQ(seeded.policy_updates, 1u);
    EXPECT_LE(seeded.policy_updates, cold.policy_updates);
    EXPECT_NEAR(seeded.gain, cold.gain, 1e-10);
    EXPECT_EQ(seeded.policy.choices(), cold.policy.choices());
    // A malformed seed (wrong size) falls back to the cold start.
    sm::PiOptions bad;
    bad.initial_policy = {0};
    const auto fallback = sm::policy_iteration(model, bad);
    EXPECT_EQ(fallback.policy_updates, cold.policy_updates);
    EXPECT_EQ(fallback.policy.choices(), cold.policy.choices());
}

TEST(ValueIteration, WarmSeedCutsIterations) {
    const auto models = figure1_subsystems(3);
    const auto& model = models.front().model();
    const auto cold = sm::relative_value_iteration(model);
    ASSERT_TRUE(cold.converged);
    sm::ViOptions warm;
    warm.initial_values = cold.bias;
    const auto seeded = sm::relative_value_iteration(model, warm);
    ASSERT_TRUE(seeded.converged);
    EXPECT_LT(seeded.iterations, cold.iterations);
    EXPECT_NEAR(seeded.gain, cold.gain, 1e-7);
    // A size-mismatched seed is ignored: identical to the cold run.
    sm::ViOptions bad;
    bad.initial_values = {1.0, 2.0};
    const auto fallback = sm::relative_value_iteration(model, bad);
    EXPECT_EQ(fallback.iterations, cold.iterations);
    EXPECT_EQ(fallback.gain, cold.gain);
}
