// End-to-end integration tests: reduced-scale versions of the paper's
// experiments (the full-scale versions live in bench/). These pin the
// *shape* of every headline claim.
#include "arch/presets.hpp"
#include "core/experiments.hpp"
#include "nonlinear/coupled_model.hpp"
#include "nonlinear/newton.hpp"
#include "split/splitter.hpp"

#include <gtest/gtest.h>

namespace sc = socbuf::core;
namespace sa = socbuf::arch;

namespace {

sc::Figure3Params small_fig3() {
    sc::Figure3Params p;
    p.horizon = 1500.0;
    p.warmup = 150.0;
    p.replications = 3;
    p.sizing_iterations = 4;
    return p;
}

}  // namespace

TEST(Figure3, ResizingBeatsConstantBeatsTimeout) {
    const auto r = sc::run_figure3(small_fig3());
    // Headline ordering of the three bars.
    EXPECT_LT(r.resized_total, r.constant_total);
    EXPECT_LT(r.constant_total, r.timeout_total);
    // The paper's factors: ~20% vs constant, ~50% vs timeout. Our
    // reconstruction is more favorable to resizing (see EXPERIMENTS.md);
    // assert the direction and a sane band rather than the exact figure.
    EXPECT_GT(r.gain_vs_constant(), 0.10);
    EXPECT_LT(r.gain_vs_constant(), 0.95);
    EXPECT_GT(r.gain_vs_timeout(), 0.30);
    // Every processor has a bar; count matches the 17-processor testbench.
    EXPECT_EQ(r.constant_loss.size(), 17u);
    EXPECT_EQ(r.resized_loss.size(), 17u);
    EXPECT_EQ(r.timeout_loss.size(), 17u);
}

TEST(Figure3, AllocationsExhaustTheBudget) {
    const auto r = sc::run_figure3(small_fig3());
    EXPECT_EQ(sc::allocation_total(r.constant_alloc), 320);
    EXPECT_EQ(sc::allocation_total(r.resized_alloc), 320);
    EXPECT_GT(r.timeout_threshold, 0.0);
}

TEST(Figure3, HotSchedulerGetsDeeperBuffersAndDoesNotWorsen) {
    // Display processor 16 (the heaviest, burstiest sender) is the paper's
    // showcase: resizing must deepen its buffer beyond the uniform share
    // and must not worsen its loss. (The full-scale bench shows it is also
    // among the biggest absolute winners; at this reduced horizon the
    // magnitudes are noisier, so the test pins the robust part.)
    const auto r = sc::run_figure3(small_fig3());
    EXPECT_GT(r.resized_alloc[15], r.constant_alloc[15]);
    EXPECT_LE(r.resized_loss[15], r.constant_loss[15] + 1.0);
}

TEST(Table1, PostLossShrinksWithBudgetAndVanishesAtTheTop) {
    sc::Table1Params p;
    p.horizon = 1500.0;
    p.warmup = 150.0;
    p.replications = 3;
    p.sizing_iterations = 4;
    const auto r = sc::run_table1(p);
    ASSERT_EQ(r.rows.size(), 3u);
    EXPECT_EQ(r.rows[0].budget, 160);
    EXPECT_EQ(r.rows[2].budget, 640);
    // Post-sizing totals decrease monotonically in the budget.
    EXPECT_GT(r.rows[0].post_total, r.rows[1].post_total);
    EXPECT_GT(r.rows[1].post_total, r.rows[2].post_total);
    // At 640 the highlighted processors reach (near-)zero loss, as in the
    // paper's last column (full-scale bench: exactly ~0; reduced horizon:
    // a handful of residual drops are tolerated).
    for (const std::size_t display : r.highlighted) {
        EXPECT_LE(r.rows[2].post[display - 1], 3.0)
            << "processor " << display;
    }
    // Resizing never hurts in total at the larger budgets.
    EXPECT_LE(r.rows[1].post_total, r.rows[1].pre_total);
    EXPECT_LE(r.rows[2].post_total, r.rows[2].pre_total);
}

TEST(Table1, TightBudgetCanWorsenIndividualProcessors) {
    // The paper: "some processors loss rates may increase when the buffer
    // space is very limited as in the 160 units case".
    sc::Table1Params p;
    p.budgets = {160};
    p.horizon = 1500.0;
    p.warmup = 150.0;
    p.replications = 3;
    p.sizing_iterations = 4;
    const auto r = sc::run_table1(p);
    ASSERT_EQ(r.rows.size(), 1u);
    bool someone_worse = false;
    for (std::size_t proc = 0; proc < r.rows[0].pre.size(); ++proc)
        if (r.rows[0].post[proc] > r.rows[0].pre[proc] + 1e-9)
            someone_worse = true;
    EXPECT_TRUE(someone_worse);
    // ... while the system as a whole still does not get (much) worse.
    EXPECT_LE(r.rows[0].post_total, r.rows[0].pre_total * 1.05);
}

TEST(Motivation, SplitYieldsFeasibleSolutionOfTheQuadraticSystem) {
    // Section 2 in one test: the monolithic model of the bridged
    // architecture is quadratic (bilinear coupling), and the split-based
    // iteration — solving only *linear* per-bus systems — produces a
    // feasible point that satisfies those quadratic equations.
    const auto sys = sa::figure1_system();
    const auto split = socbuf::split::split_architecture(sys);
    const socbuf::nonlinear::CoupledBusModel model(sys, split);
    EXPECT_GT(model.bilinear_term_count(), 0u);

    const auto fp = model.solve_fixed_point();
    ASSERT_TRUE(fp.converged);
    ASSERT_TRUE(fp.solution.feasible);

    socbuf::linalg::Vector x;
    for (const auto& pi : fp.solution.pi)
        x.insert(x.end(), pi.begin(), pi.end());
    EXPECT_LT(socbuf::linalg::norm_inf(model.residual(x)), 1e-6);
}

TEST(Figure3, ThreadCountDoesNotChangeTheResult) {
    // The determinism contract of the exec layer, end to end: every
    // replication owns its RNG substream (seed = base + index) and results
    // fold in index order, so thread count must not change a single total.
    sc::Figure3Params p = small_fig3();
    p.threads = 1;
    const auto serial = sc::run_figure3(p);
    for (const std::size_t threads : {2UL, 4UL}) {
        p.threads = threads;
        const auto parallel = sc::run_figure3(p);
        EXPECT_EQ(parallel.constant_total, serial.constant_total)
            << "threads " << threads;
        EXPECT_EQ(parallel.resized_total, serial.resized_total)
            << "threads " << threads;
        EXPECT_EQ(parallel.timeout_total, serial.timeout_total)
            << "threads " << threads;
        EXPECT_EQ(parallel.resized_alloc, serial.resized_alloc)
            << "threads " << threads;
        EXPECT_EQ(parallel.constant_loss, serial.constant_loss)
            << "threads " << threads;
    }
}

TEST(Table1, ThreadCountDoesNotChangeTheResult) {
    // Table 1's budget rows now fan out on the shared executor (one
    // sizing job per row, one eval job per replication); the fold is in
    // expansion order, so every row must be bit-identical for any worker
    // count.
    sc::Table1Params p;
    p.horizon = 800.0;
    p.warmup = 80.0;
    p.replications = 2;
    p.sizing_iterations = 3;
    p.threads = 1;
    const auto serial = sc::run_table1(p);
    ASSERT_EQ(serial.rows.size(), 3u);
    for (const std::size_t threads : {2UL, 4UL}) {
        p.threads = threads;
        const auto parallel = sc::run_table1(p);
        ASSERT_EQ(parallel.rows.size(), serial.rows.size());
        for (std::size_t r = 0; r < serial.rows.size(); ++r) {
            EXPECT_EQ(parallel.rows[r].budget, serial.rows[r].budget);
            EXPECT_EQ(parallel.rows[r].pre, serial.rows[r].pre)
                << "threads " << threads << " row " << r;
            EXPECT_EQ(parallel.rows[r].post, serial.rows[r].post)
                << "threads " << threads << " row " << r;
            EXPECT_EQ(parallel.rows[r].pre_total, serial.rows[r].pre_total)
                << "threads " << threads << " row " << r;
            EXPECT_EQ(parallel.rows[r].post_total, serial.rows[r].post_total)
                << "threads " << threads << " row " << r;
        }
    }
}

TEST(Figure3, GainsAreZeroNotNanOnZeroBaselines) {
    sc::Figure3Result empty;
    EXPECT_EQ(empty.gain_vs_constant(), 0.0);
    EXPECT_EQ(empty.gain_vs_timeout(), 0.0);
}
