#include "exec/executor.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace se = socbuf::exec;

TEST(ThreadPool, ResolveThreadCount) {
    EXPECT_EQ(se::resolve_thread_count(1), 1u);
    EXPECT_EQ(se::resolve_thread_count(7), 7u);
    // 0 = hardware concurrency, which is always at least one worker.
    EXPECT_GE(se::resolve_thread_count(0), 1u);
}

TEST(ThreadPool, RunsEverySubmittedJobExactlyOnce) {
    std::atomic<int> counter{0};
    {
        se::ThreadPool pool(4);
        EXPECT_EQ(pool.size(), 4u);
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait_idle();
        EXPECT_EQ(counter.load(), 100);
    }  // destructor drains and joins
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
    std::atomic<int> counter{0};
    {
        se::ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, RejectsEmptyJobs) {
    se::ThreadPool pool(1);
    EXPECT_THROW(pool.submit(nullptr), socbuf::util::ContractViolation);
}

TEST(ParallelMap, OrderedResultsForAnyThreadCount) {
    const std::size_t n = 257;
    auto square = [](std::size_t i) { return i * i; };
    const auto serial = se::parallel_map(std::size_t{1}, n, square);
    ASSERT_EQ(serial.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(serial[i], i * i);

    for (const std::size_t threads : {2UL, 4UL, 8UL}) {
        se::ThreadPool pool(threads);
        const auto parallel = se::parallel_map(pool, n, square);
        EXPECT_EQ(parallel, serial) << "threads=" << threads;
    }
}

TEST(ParallelMap, EmptyAndSingleton) {
    se::ThreadPool pool(3);
    const auto none =
        se::parallel_map(pool, 0, [](std::size_t i) { return i; });
    EXPECT_TRUE(none.empty());
    const auto one =
        se::parallel_map(pool, 1, [](std::size_t i) { return i + 41; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 41u);
}

TEST(ParallelMap, PropagatesTheFirstException) {
    se::ThreadPool pool(4);
    EXPECT_THROW(
        {
            auto r = se::parallel_map(pool, 64, [](std::size_t i) {
                if (i == 13) throw std::runtime_error("boom");
                return i;
            });
            (void)r;
        },
        std::runtime_error);
    // The pool survives a throwing map and keeps working.
    const auto ok =
        se::parallel_map(pool, 8, [](std::size_t i) { return i * 2; });
    EXPECT_EQ(ok[7], 14u);
}

TEST(ParallelMap, PoolIsReusableAcrossManyMaps) {
    se::ThreadPool pool(4);
    std::size_t total = 0;
    for (int round = 0; round < 20; ++round) {
        const auto r =
            se::parallel_map(pool, 32, [](std::size_t i) { return i; });
        total += std::accumulate(r.begin(), r.end(), std::size_t{0});
    }
    EXPECT_EQ(total, 20u * (31u * 32u / 2u));
}

TEST(Executor, SerialExecutorOwnsNoPool) {
    se::Executor exec(1);
    EXPECT_EQ(exec.workers(), 1u);
    EXPECT_TRUE(exec.serial());
    EXPECT_EQ(exec.pool(), nullptr);
    const auto r = exec.map(5, [](std::size_t i) { return i * 3; });
    ASSERT_EQ(r.size(), 5u);
    EXPECT_EQ(r[4], 12u);
}

TEST(Executor, ParallelExecutorMatchesSerialBitForBit) {
    se::Executor serial(1);
    const auto expected =
        serial.map(113, [](std::size_t i) { return 1.0 / (1.0 + i); });
    for (const std::size_t threads : {2UL, 4UL}) {
        se::Executor exec(threads);
        EXPECT_EQ(exec.workers(), threads);
        EXPECT_FALSE(exec.serial());
        ASSERT_NE(exec.pool(), nullptr);
        const auto got =
            exec.map(113, [](std::size_t i) { return 1.0 / (1.0 + i); });
        EXPECT_EQ(got, expected) << "threads=" << threads;
    }
}

TEST(Executor, IsReusableAcrossManyMaps) {
    se::Executor exec(4);
    std::size_t total = 0;
    for (int round = 0; round < 10; ++round) {
        const auto r = exec.map(32, [](std::size_t i) { return i; });
        total += std::accumulate(r.begin(), r.end(), std::size_t{0});
    }
    EXPECT_EQ(total, 10u * (31u * 32u / 2u));
}

TEST(Executor, ForEachVisitsEveryIndex) {
    se::Executor exec(3);
    std::vector<std::atomic<int>> visits(200);
    exec.for_each(visits.size(), [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelForIndex, VisitsEveryIndexOnce) {
    se::ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(500);
    se::parallel_for_index(pool, visits.size(),
                           [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}
