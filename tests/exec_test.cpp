#include "exec/executor.hpp"
#include "exec/parallel.hpp"
#include "exec/task_graph.hpp"
#include "exec/thread_pool.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace se = socbuf::exec;

TEST(ThreadPool, ResolveThreadCount) {
    EXPECT_EQ(se::resolve_thread_count(1), 1u);
    EXPECT_EQ(se::resolve_thread_count(7), 7u);
    // 0 = hardware concurrency, which is always at least one worker.
    EXPECT_GE(se::resolve_thread_count(0), 1u);
}

TEST(ThreadPool, RunsEverySubmittedJobExactlyOnce) {
    std::atomic<int> counter{0};
    {
        se::ThreadPool pool(4);
        EXPECT_EQ(pool.size(), 4u);
        for (int i = 0; i < 100; ++i)
            pool.submit([&counter] { ++counter; });
        pool.wait_idle();
        EXPECT_EQ(counter.load(), 100);
    }  // destructor drains and joins
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, DestructorDrainsPendingJobs) {
    std::atomic<int> counter{0};
    {
        se::ThreadPool pool(2);
        for (int i = 0; i < 50; ++i) pool.submit([&counter] { ++counter; });
    }
    EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, RejectsEmptyJobs) {
    se::ThreadPool pool(1);
    EXPECT_THROW(pool.submit(nullptr), socbuf::util::ContractViolation);
}

TEST(ThreadPool, RejectsThreadCountsPastTheMaximum) {
    EXPECT_EQ(se::resolve_thread_count(se::kMaxThreads), se::kMaxThreads);
    // A runaway literal (--threads 18446744073709551615) must fail the
    // contract up front, not die inside std::vector growth.
    EXPECT_THROW((void)se::resolve_thread_count(se::kMaxThreads + 1),
                 socbuf::util::ContractViolation);
}

TEST(ThreadPool, ClaimsHigherPrioritiesFirstAndKeepsFifoWithinALevel) {
    // One worker, parked on a gate job: everything submitted while it is
    // busy queues up, and the release order *is* the claim policy —
    // kEvaluation first, then kSizing, then kDefault, FIFO within each
    // level, regardless of submission order.
    se::ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::promise<void> parked;
    pool.submit([open, &parked] {
        parked.set_value();
        open.wait();
    });
    // The ordered jobs must all be *queued* while the worker sits on the
    // gate; submitting before the worker has claimed it would let the
    // claim loop pick whichever job happens to be queued at wake-up.
    parked.get_future().wait();

    std::mutex order_mutex;
    std::vector<std::string> order;
    const auto record = [&](const char* name) {
        std::lock_guard<std::mutex> lock(order_mutex);
        order.emplace_back(name);
    };
    pool.submit([&] { record("default-1"); });  // Priority::kDefault
    pool.submit([&] { record("sizing-1"); }, se::Priority::kSizing);
    pool.submit([&] { record("eval-1"); }, se::Priority::kEvaluation);
    pool.submit([&] { record("default-2"); }, se::Priority::kDefault);
    pool.submit([&] { record("eval-2"); }, se::Priority::kEvaluation);
    pool.submit([&] { record("sizing-2"); }, se::Priority::kSizing);

    gate.set_value();
    pool.wait_idle();
    EXPECT_EQ(order,
              (std::vector<std::string>{"eval-1", "eval-2", "sizing-1",
                                        "sizing-2", "default-1",
                                        "default-2"}));
}

TEST(ThreadPool, AgingLimitBoundsHowLongLowerLevelsStarve) {
    // Same single-worker gate pattern as the claim-order test, with the
    // opt-in aging knob at 2: a saturated kEvaluation stream may pass
    // over a waiting lower level at most twice before that level's
    // oldest job is claimed. Expected claim trace — e1, e2 (sizing and
    // default each skipped twice), s1 (sizing aged first: higher
    // priority of the aged levels; default is passed over again), d1
    // (default aged), then the remaining evaluations.
    se::ThreadPool pool(1, /*aging_limit=*/2);
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    std::promise<void> parked;
    pool.submit([open, &parked] {
        parked.set_value();
        open.wait();
    });
    parked.get_future().wait();

    std::mutex order_mutex;
    std::vector<std::string> order;
    const auto record = [&](const char* name) {
        std::lock_guard<std::mutex> lock(order_mutex);
        order.emplace_back(name);
    };
    pool.submit([&] { record("d1"); }, se::Priority::kDefault);
    pool.submit([&] { record("s1"); }, se::Priority::kSizing);
    for (const char* name : {"e1", "e2", "e3", "e4", "e5"})
        pool.submit([&, name] { record(name); }, se::Priority::kEvaluation);

    gate.set_value();
    pool.wait_idle();
    EXPECT_EQ(order, (std::vector<std::string>{"e1", "e2", "s1", "d1", "e3",
                                               "e4", "e5"}));
}

TEST(ParallelMap, OrderedResultsForAnyThreadCount) {
    const std::size_t n = 257;
    auto square = [](std::size_t i) { return i * i; };
    const auto serial = se::parallel_map(std::size_t{1}, n, square);
    ASSERT_EQ(serial.size(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(serial[i], i * i);

    for (const std::size_t threads : {2UL, 4UL, 8UL}) {
        se::ThreadPool pool(threads);
        const auto parallel = se::parallel_map(pool, n, square);
        EXPECT_EQ(parallel, serial) << "threads=" << threads;
    }
}

TEST(ParallelMap, EmptyAndSingleton) {
    se::ThreadPool pool(3);
    const auto none =
        se::parallel_map(pool, 0, [](std::size_t i) { return i; });
    EXPECT_TRUE(none.empty());
    const auto one =
        se::parallel_map(pool, 1, [](std::size_t i) { return i + 41; });
    ASSERT_EQ(one.size(), 1u);
    EXPECT_EQ(one[0], 41u);
}

TEST(ParallelMap, PropagatesTheFirstException) {
    se::ThreadPool pool(4);
    EXPECT_THROW(
        {
            auto r = se::parallel_map(pool, 64, [](std::size_t i) {
                if (i == 13) throw std::runtime_error("boom");
                return i;
            });
            (void)r;
        },
        std::runtime_error);
    // The pool survives a throwing map and keeps working.
    const auto ok =
        se::parallel_map(pool, 8, [](std::size_t i) { return i * 2; });
    EXPECT_EQ(ok[7], 14u);
}

TEST(ParallelMap, PoolIsReusableAcrossManyMaps) {
    se::ThreadPool pool(4);
    std::size_t total = 0;
    for (int round = 0; round < 20; ++round) {
        const auto r =
            se::parallel_map(pool, 32, [](std::size_t i) { return i; });
        total += std::accumulate(r.begin(), r.end(), std::size_t{0});
    }
    EXPECT_EQ(total, 20u * (31u * 32u / 2u));
}

TEST(Executor, SerialExecutorOwnsNoPool) {
    se::Executor exec(1);
    EXPECT_EQ(exec.workers(), 1u);
    EXPECT_TRUE(exec.serial());
    EXPECT_EQ(exec.pool(), nullptr);
    const auto r = exec.map(5, [](std::size_t i) { return i * 3; });
    ASSERT_EQ(r.size(), 5u);
    EXPECT_EQ(r[4], 12u);
}

TEST(Executor, ParallelExecutorMatchesSerialBitForBit) {
    se::Executor serial(1);
    const auto expected =
        serial.map(113, [](std::size_t i) { return 1.0 / (1.0 + i); });
    for (const std::size_t threads : {2UL, 4UL}) {
        se::Executor exec(threads);
        EXPECT_EQ(exec.workers(), threads);
        EXPECT_FALSE(exec.serial());
        ASSERT_NE(exec.pool(), nullptr);
        const auto got =
            exec.map(113, [](std::size_t i) { return 1.0 / (1.0 + i); });
        EXPECT_EQ(got, expected) << "threads=" << threads;
    }
}

TEST(Executor, IsReusableAcrossManyMaps) {
    se::Executor exec(4);
    std::size_t total = 0;
    for (int round = 0; round < 10; ++round) {
        const auto r = exec.map(32, [](std::size_t i) { return i; });
        total += std::accumulate(r.begin(), r.end(), std::size_t{0});
    }
    EXPECT_EQ(total, 10u * (31u * 32u / 2u));
}

TEST(Executor, ForEachVisitsEveryIndex) {
    se::Executor exec(3);
    std::vector<std::atomic<int>> visits(200);
    exec.for_each(visits.size(), [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelForIndex, VisitsEveryIndexOnce) {
    se::ThreadPool pool(4);
    std::vector<std::atomic<int>> visits(500);
    se::parallel_for_index(pool, visits.size(),
                           [&](std::size_t i) { ++visits[i]; });
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ParallelForIndex, NestedFanOutOnTheSamePoolCompletes) {
    // Every outer index occupies a worker and fans again on the same
    // pool — under the old blocking scheme this parked all workers on
    // waits only other workers could satisfy (deadlock); the caller-
    // driving loop guarantees progress instead.
    se::ThreadPool pool(2);
    std::vector<std::size_t> sums(8, 0);
    se::parallel_for_index(pool, sums.size(), [&](std::size_t i) {
        const auto inner = se::parallel_map(
            pool, 16, [i](std::size_t k) { return i * 100 + k; });
        sums[i] = std::accumulate(inner.begin(), inner.end(), std::size_t{0});
    });
    for (std::size_t i = 0; i < sums.size(); ++i)
        EXPECT_EQ(sums[i], i * 1600 + 120) << "outer index " << i;
}

TEST(Executor, NestedMapMatchesSerialBitForBit) {
    const auto run_with = [](se::Executor& exec) {
        return exec.map(6, [&](std::size_t i) {
            const auto inner = exec.map(
                10, [i](std::size_t k) { return 1.0 / (1.0 + i + k); });
            double total = 0.0;
            for (const double v : inner) total += v;
            return total;
        });
    };
    se::Executor serial(1);
    const auto expected = run_with(serial);
    for (const std::size_t threads : {2UL, 4UL}) {
        se::Executor exec(threads);
        const auto got = run_with(exec);
        EXPECT_EQ(got, expected) << "threads=" << threads;
    }
}

TEST(TaskGraph, RunsEverySubmittedTask) {
    se::Executor exec(4);
    se::TaskGraph graph(exec);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        graph.submit([&counter] { ++counter; });
    graph.wait();
    EXPECT_EQ(counter.load(), 100);
    EXPECT_EQ(graph.submitted(), 100u);
}

TEST(TaskGraph, TasksMaySubmitContinuations) {
    // The BatchRunner shape: parents submit their children from inside
    // their own bodies; wait() covers the whole cascade.
    se::Executor exec(3);
    se::TaskGraph graph(exec);
    std::vector<std::atomic<int>> child_runs(10);
    for (std::size_t p = 0; p < child_runs.size(); ++p) {
        graph.submit([&graph, &child_runs, p] {
            for (int c = 0; c < 4; ++c)
                graph.submit([&child_runs, p] { ++child_runs[p]; });
        });
    }
    graph.wait();
    for (std::size_t p = 0; p < child_runs.size(); ++p)
        EXPECT_EQ(child_runs[p].load(), 4) << "parent " << p;
    EXPECT_EQ(graph.submitted(), 50u);
}

TEST(TaskGraph, SerialExecutorRunsInlineDepthFirst) {
    se::Executor serial(1);
    se::TaskGraph graph(serial);
    std::vector<int> order;
    for (int p = 0; p < 3; ++p) {
        graph.submit([&graph, &order, p] {
            order.push_back(10 * p);
            graph.submit([&order, p] { order.push_back(10 * p + 1); });
        });
    }
    graph.wait();
    // Each parent's continuation runs before the next parent — the
    // serial reference order the parallel runs must reproduce through
    // index-addressed slots.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 11, 20, 21}));
}

TEST(TaskGraph, MixedPrioritiesRunEveryTaskExactlyOnce) {
    // Priorities reorder claims, nothing else: every task still runs
    // exactly once and wait() covers the whole cascade, whatever the
    // labeling — including continuations submitted at a *higher*
    // priority than their parents (the BatchRunner shape).
    se::Executor exec(3);
    se::TaskGraph graph(exec);
    std::vector<std::atomic<int>> runs(12);
    for (std::size_t p = 0; p < runs.size(); ++p) {
        graph.submit(
            [&graph, &runs, p] {
                graph.submit([&runs, p] { ++runs[p]; },
                             se::Priority::kEvaluation);
            },
            se::Priority::kSizing);
    }
    graph.wait();
    for (std::size_t p = 0; p < runs.size(); ++p)
        EXPECT_EQ(runs[p].load(), 1) << "parent " << p;
    EXPECT_EQ(graph.submitted(), 24u);
}

TEST(TaskGraph, PrioritizedGraphMatchesFifoGraphResultSlots) {
    // The determinism contract under relabeling: index-addressed slots
    // hold the same values whether the graph runs FIFO (all kDefault) or
    // priority-scheduled, at any width.
    const auto run_with = [](se::Executor& exec, bool prioritized) {
        se::TaskGraph graph(exec);
        std::vector<double> slots(40, 0.0);
        for (std::size_t i = 0; i < slots.size(); ++i) {
            const se::Priority priority =
                !prioritized ? se::Priority::kDefault
                : i % 2 == 0 ? se::Priority::kEvaluation
                             : se::Priority::kSizing;
            graph.submit(
                [&slots, i] { slots[i] = 1.0 / (1.0 + static_cast<double>(i)); },
                priority);
        }
        graph.wait();
        return slots;
    };
    se::Executor serial(1);
    const auto expected = run_with(serial, true);
    for (const std::size_t threads : {2UL, 4UL}) {
        se::Executor exec(threads);
        EXPECT_EQ(run_with(exec, true), expected) << "threads=" << threads;
        EXPECT_EQ(run_with(exec, false), expected) << "threads=" << threads;
    }
}

TEST(TaskGraph, WaitRethrowsTheFirstErrorAndSkipsPendingTasks) {
    se::Executor exec(2);
    se::TaskGraph graph(exec);
    std::atomic<int> ran{0};
    graph.submit([] { throw std::runtime_error("boom"); });
    for (int i = 0; i < 50; ++i)
        graph.submit([&ran] { ++ran; });
    EXPECT_THROW(graph.wait(), std::runtime_error);
    // Skipped or ran, every slot drained; the graph stays usable.
    EXPECT_LE(ran.load(), 50);
    graph.submit([&ran] { ++ran; });
    EXPECT_NO_THROW(graph.wait());
}

TEST(TaskGraph, SerialErrorsAreAlsoDeferredToWait) {
    se::Executor serial(1);
    se::TaskGraph graph(serial);
    std::vector<int> ran;
    graph.submit([&ran] { ran.push_back(1); });
    graph.submit([] { throw std::runtime_error("boom"); });
    graph.submit([&ran] { ran.push_back(2); });  // skipped: cancelled
    EXPECT_THROW(graph.wait(), std::runtime_error);
    EXPECT_EQ(ran, std::vector<int>{1});
}
