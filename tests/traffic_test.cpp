#include "arch/presets.hpp"
#include "traffic/arrivals.hpp"
#include "traffic/routing.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

namespace st = socbuf::traffic;
namespace sa = socbuf::arch;

TEST(Arrivals, PoissonMeanRate) {
    st::PoissonProcess p(2.0);
    EXPECT_DOUBLE_EQ(p.mean_rate(), 2.0);
    socbuf::rng::RandomEngine eng(5);
    double total = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) total += p.next_interarrival(eng);
    EXPECT_NEAR(total / n, 0.5, 0.01);
    EXPECT_THROW(st::PoissonProcess{0.0}, socbuf::util::ContractViolation);
}

TEST(Arrivals, OnOffPreservesLongRunRate) {
    // peak 3.0, on 2, off 1 -> mean rate 2.0.
    st::OnOffProcess p(3.0, 2.0, 1.0);
    EXPECT_NEAR(p.mean_rate(), 2.0, 1e-12);
    socbuf::rng::RandomEngine eng(7);
    double total = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) total += p.next_interarrival(eng);
    EXPECT_NEAR(static_cast<double>(n) / total, 2.0, 0.05);
}

TEST(Arrivals, OnOffIsBurstier) {
    // Squared coefficient of variation of inter-arrivals must exceed the
    // Poisson value (1) for a strongly modulated source.
    st::OnOffProcess p(10.0, 1.0, 4.0);  // mean rate 2, very bursty
    socbuf::rng::RandomEngine eng(11);
    double sum = 0.0;
    double sumsq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = p.next_interarrival(eng);
        sum += x;
        sumsq += x * x;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_GT(var / (mean * mean), 1.5);
}

TEST(Arrivals, FactoryRespectsSpec) {
    sa::FlowSpec smooth{0, 1, 1.5, 1.0, 0.0, 0.0};
    const auto p1 = st::make_arrival_process(smooth);
    EXPECT_NEAR(p1->mean_rate(), 1.5, 1e-12);

    sa::FlowSpec bursty{0, 1, 1.5, 1.0, 2.0, 2.0};
    ASSERT_TRUE(bursty.bursty());
    const auto p2 = st::make_arrival_process(bursty);
    // Long-run rate preserved; peak doubled (duty cycle 1/2).
    EXPECT_NEAR(p2->mean_rate(), 1.5, 1e-9);
    const auto* onoff = dynamic_cast<const st::OnOffProcess*>(p2.get());
    ASSERT_NE(onoff, nullptr);
    EXPECT_NEAR(onoff->peak_rate(), 3.0, 1e-9);
}

TEST(Routing, SingleBusFlowHasOneSite) {
    const auto sys = sa::figure1_system();
    const auto routes = st::compute_routes(sys);
    ASSERT_EQ(routes.size(), sys.flows.size());
    // Flow 0: processor 1 -> 4, both on bus a.
    EXPECT_EQ(routes[0].sites.size(), 1u);
    EXPECT_EQ(routes[0].sites[0],
              sa::processor_site(sys.architecture, sys.flows[0].source));
}

TEST(Routing, CrossBridgeFlowsVisitBridgeSites) {
    const auto sys = sa::figure1_system();
    const auto routes = st::compute_routes(sys);
    const auto sites = sa::enumerate_buffer_sites(sys.architecture);
    // Flow 2: processor 2 (bus b) -> 5 (bus g) through b<->f and f<->g.
    const auto& r = routes[2];
    ASSERT_EQ(r.sites.size(), 3u);
    EXPECT_EQ(sites[r.sites[0]].kind, sa::SiteKind::kProcessor);
    EXPECT_EQ(sites[r.sites[1]].kind, sa::SiteKind::kBridge);
    EXPECT_EQ(sites[r.sites[2]].kind, sa::SiteKind::kBridge);
    // Direction: first bridge hop leaves bus b, so the site contends on f.
    EXPECT_EQ(sites[r.sites[1]].from_bus, sys.architecture.processor(1).bus);
}

TEST(Routing, OfferedRatesAccumulateAlongRoutes) {
    const auto sys = sa::figure1_system();
    const auto routes = st::compute_routes(sys);
    const auto sites = sa::enumerate_buffer_sites(sys.architecture);
    const auto rates = st::offered_rate_per_site(sys, routes, sites.size());
    // Processor 2's site carries both of processor 2's flows.
    double expected = 0.0;
    for (const auto& f : sys.flows)
        if (f.source == 1) expected += f.rate;
    EXPECT_NEAR(rates[1], expected, 1e-12);
    // Total over processor sites equals total offered rate.
    double processor_total = 0.0;
    for (std::size_t p = 0; p < sys.architecture.processor_count(); ++p)
        processor_total += rates[p];
    double flow_total = 0.0;
    for (const auto& f : sys.flows) flow_total += f.rate;
    EXPECT_NEAR(processor_total, flow_total, 1e-12);
}

TEST(Routing, WeightsTakeMaxOverFlows) {
    auto sys = sa::figure1_system();
    sys.flows[0].weight = 5.0;  // flow 0 goes out of processor 1's site
    const auto routes = st::compute_routes(sys);
    const auto sites = sa::enumerate_buffer_sites(sys.architecture);
    const auto weights = st::weight_per_site(sys, routes, sites.size());
    EXPECT_DOUBLE_EQ(weights[0], 5.0);
}

TEST(Routing, SelfFlowRejected) {
    auto sys = sa::figure1_system();
    sys.flows.push_back({2, 2, 1.0, 1.0, 0.0, 0.0});
    EXPECT_THROW(st::compute_routes(sys), socbuf::util::ContractViolation);
}
