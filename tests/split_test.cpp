#include "arch/presets.hpp"
#include "split/splitter.hpp"
#include "rng/engine.hpp"
#include "util/contracts.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sp = socbuf::split;
namespace sa = socbuf::arch;

TEST(Split, Figure1YieldsFourLinearSubsystems) {
    // The paper's Figure 2: the sample architecture splits into four
    // single-bus subsystems with four inserted bridge buffers (b1..b4).
    const auto sys = sa::figure1_system();
    const auto split = sp::split_architecture(sys);
    EXPECT_EQ(split.subsystems.size(), 4u);
    EXPECT_EQ(split.inserted_buffer_count, 4u);
    EXPECT_NO_THROW(sp::verify_linearity(sys, split));
}

TEST(Split, Figure1SubsystemContents) {
    const auto sys = sa::figure1_system();
    const auto split = sp::split_architecture(sys);
    // Bus b's subsystem: processors 2, 3 plus one inserted bridge buffer
    // (the paper: "bus b becomes a shared resource between [bridge
    // buffers] and processors 2 and 3").
    const sp::Subsystem* bus_b = nullptr;
    for (const auto& sub : split.subsystems)
        if (sub.bus_name == "b") bus_b = &sub;
    ASSERT_NE(bus_b, nullptr);
    std::size_t processors = 0;
    std::size_t inserted = 0;
    for (const auto& f : bus_b->flows) {
        if (f.inserted)
            ++inserted;
        else
            ++processors;
    }
    EXPECT_EQ(processors, 2u);
    EXPECT_EQ(inserted, 1u);
}

TEST(Split, NetworkProcessorFiveSubsystems) {
    const auto sys = sa::network_processor_system();
    const auto split = sp::split_architecture(sys);
    EXPECT_EQ(split.subsystems.size(), 5u);
    EXPECT_EQ(split.inserted_buffer_count, 8u);  // 4 bridges x 2 directions
    EXPECT_NO_THROW(sp::verify_linearity(sys, split));
    // Every subsystem is stable (long-run load below service rate) —
    // required for Table 1's zero-loss column to be reachable.
    for (const auto& sub : split.subsystems) {
        EXPECT_LT(sub.utilization(), 1.0) << sub.bus_name;
        EXPECT_GT(sub.utilization(), 0.3) << sub.bus_name;
    }
}

TEST(Split, SubsystemRatesMatchRoutedTraffic) {
    const auto sys = sa::figure1_system();
    const auto split = sp::split_architecture(sys);
    // Total offered over all subsystems >= total flow rate (multi-hop flows
    // are offered to several subsystems).
    double flow_total = 0.0;
    for (const auto& f : sys.flows) flow_total += f.rate;
    double split_total = 0.0;
    for (const auto& sub : split.subsystems) split_total += sub.offered_rate();
    EXPECT_GE(split_total, flow_total - 1e-9);
}

TEST(Split, SiteMappingIsConsistent) {
    const auto sys = sa::network_processor_system();
    const auto split = sp::split_architecture(sys);
    for (std::size_t k = 0; k < split.subsystems.size(); ++k)
        for (const auto& f : split.subsystems[k].flows)
            EXPECT_EQ(split.subsystem_of_site[f.site], k);
    // Sites not referenced by any subsystem are marked npos.
    std::set<sa::SiteId> used;
    for (const auto& sub : split.subsystems)
        for (const auto& f : sub.flows) used.insert(f.site);
    for (std::size_t s = 0; s < split.sites.size(); ++s)
        if (!used.count(s)) {
            EXPECT_EQ(split.subsystem_of_site[s], sp::SplitResult::npos);
        }
}

TEST(Split, LinearityCheckCatchesCorruption) {
    const auto sys = sa::figure1_system();
    auto split = sp::split_architecture(sys);
    // Move a flow to a foreign subsystem: must be rejected.
    ASSERT_GE(split.subsystems.size(), 2u);
    auto stolen = split.subsystems[1].flows.front();
    split.subsystems[1].flows.erase(split.subsystems[1].flows.begin());
    split.subsystems[0].flows.push_back(stolen);
    EXPECT_THROW(sp::verify_linearity(sys, split),
                 socbuf::util::ModelError);
}

TEST(Split, RejectsEmptyWorkload) {
    auto sys = sa::figure1_system();
    sys.flows.clear();
    EXPECT_THROW(sp::split_architecture(sys),
                 socbuf::util::ContractViolation);
}

TEST(Split, InsertedBuffersOnlyWhereTrafficCrosses) {
    // A two-bus system where traffic only flows a->b: only one of the two
    // directional bridge buffers carries traffic, so only one is inserted.
    sa::TestSystem sys;
    const auto x = sys.architecture.add_bus("x", 2.0);
    const auto y = sys.architecture.add_bus("y", 2.0);
    const auto p = sys.architecture.add_processor("p", x);
    const auto q = sys.architecture.add_processor("q", y);
    sys.architecture.add_bridge("xy", x, y);
    sys.flows.push_back({p, q, 1.0, 1.0, 0.0, 0.0});
    const auto split = sp::split_architecture(sys);
    EXPECT_EQ(split.inserted_buffer_count, 1u);
    EXPECT_EQ(split.subsystems.size(), 2u);
}



TEST(Split, DefaultPlacementReproducesTheClassicSplit) {
    // The all-selected Placement is the paper's split bit for bit: same
    // subsystems, same flows, same inserted count as the overload
    // without a placement.
    const auto sys = sa::figure1_system();
    const auto classic = sp::split_architecture(sys);
    const auto placed = sp::split_architecture(sys, sp::Placement{});
    ASSERT_EQ(placed.subsystems.size(), classic.subsystems.size());
    EXPECT_EQ(placed.inserted_buffer_count, classic.inserted_buffer_count);
    for (std::size_t k = 0; k < classic.subsystems.size(); ++k) {
        const auto& a = classic.subsystems[k];
        const auto& b = placed.subsystems[k];
        ASSERT_EQ(a.flows.size(), b.flows.size()) << a.bus_name;
        for (std::size_t i = 0; i < a.flows.size(); ++i) {
            EXPECT_EQ(a.flows[i].site, b.flows[i].site);
            EXPECT_EQ(a.flows[i].arrival_rate, b.flows[i].arrival_rate);
            EXPECT_EQ(a.flows[i].pinned, b.flows[i].pinned);
            EXPECT_FALSE(b.flows[i].pinned);
        }
    }
}

TEST(Split, DeselectedBridgeSitesComeBackPinned) {
    // Deselect one traffic-carrying bridge site: the split still covers
    // every flow (linearity holds), but that site's subsystem flow is
    // pinned and no longer counts as an inserted buffer.
    const auto sys = sa::figure1_system();
    const auto classic = sp::split_architecture(sys);
    const auto candidates = sa::candidate_bridge_sites(classic.sites);
    // Pick the first candidate that actually carries traffic.
    sa::SiteId victim = sp::SplitResult::npos;
    for (const sa::SiteId c : candidates)
        if (classic.subsystem_of_site[c] != sp::SplitResult::npos) {
            victim = c;
            break;
        }
    ASSERT_NE(victim, sp::SplitResult::npos);

    sp::Placement placement;
    placement.selected.assign(classic.sites.size(), true);
    placement.selected[victim] = false;
    EXPECT_FALSE(placement.all_selected());
    EXPECT_FALSE(placement.site_selected(victim));

    const auto placed = sp::split_architecture(sys, placement);
    EXPECT_NO_THROW(sp::verify_linearity(sys, placed));
    EXPECT_EQ(placed.inserted_buffer_count,
              classic.inserted_buffer_count - 1);
    std::size_t pinned = 0;
    for (const auto& sub : placed.subsystems)
        for (const auto& f : sub.flows)
            if (f.pinned) {
                ++pinned;
                EXPECT_EQ(f.site, victim);
                EXPECT_FALSE(f.inserted);  // pinned, not inserted
            }
    EXPECT_EQ(pinned, 1u);
}

TEST(Split, PlacementEqualityIsStructural) {
    sp::Placement a;
    sp::Placement b;
    EXPECT_TRUE(a == b);
    b.selected = {true, false};
    EXPECT_TRUE(a != b);
    a.selected = {true, false};
    EXPECT_TRUE(a == b);
    // Out-of-range sites read as selected (the mask only narrows).
    EXPECT_TRUE(a.site_selected(99));
}

class SplitPropertyTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SplitPropertyTest, RandomBridgedTopologiesSplitLinearly) {
    // Random star/chain mixes of buses: the split must always produce
    // single-bus subsystems that pass the linearity check.
    const unsigned seed = GetParam();
    socbuf::rng::RandomEngine eng(seed);
    sa::TestSystem sys;
    const std::size_t n_bus = 2 + seed % 4;
    std::vector<sa::BusId> buses;
    for (std::size_t b = 0; b < n_bus; ++b)
        buses.push_back(
            sys.architecture.add_bus("B" + std::to_string(b),
                                     1.0 + eng.uniform()));
    // Chain the buses so everything is connected.
    for (std::size_t b = 1; b < n_bus; ++b)
        sys.architecture.add_bridge("", buses[b - 1], buses[b]);
    std::vector<sa::ProcessorId> procs;
    for (std::size_t b = 0; b < n_bus; ++b)
        for (int i = 0; i < 2; ++i)
            procs.push_back(sys.architecture.add_processor("", buses[b]));
    for (std::size_t f = 0; f < procs.size(); ++f) {
        std::size_t dst_idx = (f + 1 + seed) % procs.size();
        if (dst_idx == f) dst_idx = (dst_idx + 1) % procs.size();
        sys.flows.push_back({procs[f], procs[dst_idx],
                             0.2 + eng.uniform() * 0.3, 1.0, 0.0, 0.0});
    }
    const auto split = sp::split_architecture(sys);
    EXPECT_NO_THROW(sp::verify_linearity(sys, split)) << "seed " << seed;
    for (const auto& sub : split.subsystems)
        for (const auto& f : sub.flows)
            EXPECT_EQ(split.sites[f.site].bus, sub.bus);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitPropertyTest, ::testing::Range(1u, 13u));
